"""Admission control units: token bucket, gate order, degrade."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.serving import (
    SHED_PREDICTED_WAIT,
    SHED_QUEUE_FULL,
    SHED_RATE_LIMIT,
    AdmissionPolicy,
    TokenBucket,
)
from repro.serving.admission import ADMIT


class TestTokenBucket:
    def test_burst_then_deny_then_refill(self):
        bucket = TokenBucket(rate_qps=10.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst exhausted
        assert not bucket.try_take(0.05)  # half a token refilled
        assert bucket.try_take(0.1)  # a whole one now

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_qps=100.0, burst=2.0)
        assert bucket.try_take(0.0)
        # A long idle period refills to burst, not beyond.
        assert bucket.try_take(100.0)
        assert bucket.try_take(100.0)
        assert not bucket.try_take(100.0)

    def test_time_backwards_rejected(self):
        bucket = TokenBucket(rate_qps=10.0, burst=2.0)
        bucket.try_take(1.0)
        with pytest.raises(ConfigError, match="backwards"):
            bucket.try_take(0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_qps": 0.0, "burst": 2.0},
            {"rate_qps": float("inf"), "burst": 2.0},
            {"rate_qps": 10.0, "burst": 0.5},
            {"rate_qps": 10.0, "burst": float("nan")},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            TokenBucket(**kwargs)


class TestAdmissionPolicy:
    def decide(self, policy, **overrides):
        kwargs = dict(
            now_s=0.0,
            queue_depth=0,
            deadline_s=math.inf,
            predicted_done_s=None,
            bucket=None,
        )
        kwargs.update(overrides)
        return policy.decide(**kwargs)

    def test_shedding_off_admits_everything(self):
        policy = AdmissionPolicy(shedding=False, max_queue_depth=1)
        assert self.decide(policy, queue_depth=10_000) == ADMIT
        assert policy.bucket_for() is None

    def test_queue_full_gate(self):
        policy = AdmissionPolicy(max_queue_depth=4)
        assert self.decide(policy, queue_depth=3) == ADMIT
        assert self.decide(policy, queue_depth=4) == SHED_QUEUE_FULL

    def test_rate_limit_gate(self):
        policy = AdmissionPolicy(rate_limit_qps=10.0, rate_limit_burst=1.0)
        bucket = policy.bucket_for()
        assert bucket is not None
        assert self.decide(policy, bucket=bucket) == ADMIT
        assert self.decide(policy, bucket=bucket) == SHED_RATE_LIMIT

    def test_predicted_wait_gate_needs_a_warm_predictor(self):
        policy = AdmissionPolicy()
        # Cold predictor (None): never sheds on prediction alone.
        assert self.decide(policy, deadline_s=0.001) == ADMIT
        # Warm predictor, miss predicted: shed.
        assert (
            self.decide(
                policy, deadline_s=0.001, predicted_done_s=0.002
            )
            == SHED_PREDICTED_WAIT
        )
        # No deadline: nothing to miss.
        assert self.decide(policy, predicted_done_s=1e9) == ADMIT

    def test_gate_order_queue_before_rate_before_wait(self):
        policy = AdmissionPolicy(
            max_queue_depth=1, rate_limit_qps=10.0, rate_limit_burst=1.0
        )
        bucket = policy.bucket_for()
        verdict = self.decide(
            policy,
            queue_depth=1,
            bucket=bucket,
            deadline_s=0.001,
            predicted_done_s=1.0,
        )
        assert verdict == SHED_QUEUE_FULL
        # The queue-full shed did not consume a token.
        assert self.decide(policy, bucket=bucket) == ADMIT

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue_depth": 0},
            {"max_queue_depth": True},
            {"rate_limit_qps": -1.0},
            {"rate_limit_burst": 0.0},
            {"predicted_wait_slack": 0.0},
            {"degrade_wait_frac": 1.5},
            {"min_coverage": 0.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            AdmissionPolicy(**kwargs)


class TestDegrade:
    def test_within_budget_keeps_configured(self):
        policy = AdmissionPolicy(degrade_wait_frac=0.5)
        assert (
            policy.degraded_nprobe(
                8, predicted_wait_s=0.004, tightest_budget_s=0.010
            )
            == 8
        )

    def test_over_budget_halves_down_to_the_floor(self):
        policy = AdmissionPolicy(degrade_wait_frac=0.5, min_coverage=0.5)
        assert (
            policy.degraded_nprobe(
                8, predicted_wait_s=0.009, tightest_budget_s=0.010
            )
            == 4
        )
        # The floor wins when half would cross it.
        strict = AdmissionPolicy(degrade_wait_frac=0.5, min_coverage=0.9)
        assert (
            strict.degraded_nprobe(
                8, predicted_wait_s=0.009, tightest_budget_s=0.010
            )
            == 8  # ceil(0.9 * 8) = 8
        )

    def test_never_below_one(self):
        policy = AdmissionPolicy(min_coverage=0.01)
        assert (
            policy.degraded_nprobe(
                1, predicted_wait_s=1.0, tightest_budget_s=0.001
            )
            >= 1
        )

    def test_no_deadline_or_no_shedding_means_no_degrade(self):
        assert (
            AdmissionPolicy().degraded_nprobe(
                8, predicted_wait_s=1.0, tightest_budget_s=math.inf
            )
            == 8
        )
        assert (
            AdmissionPolicy(shedding=False).degraded_nprobe(
                8, predicted_wait_s=1.0, tightest_budget_s=0.001
            )
            == 8
        )
