"""Arrival generation: determinism, burst shape, tenant independence."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serving import ArrivalGenerator, TenantConfig
from repro.workload.batch import BatchGenerator


def make_gens(small_dataset, tenants, *, seed=3):
    return {
        t.name: BatchGenerator(
            dataset=small_dataset,
            batch_size=30,
            zipf_alpha=t.zipf_alpha,
            rng=np.random.default_rng([seed, i]),
        )
        for i, t in enumerate(tenants)
    }


class TestTenantConfig:
    def test_plain_poisson_rate_is_flat(self):
        t = TenantConfig(name="a", rate_qps=100.0)
        assert t.rate_at(0.0) == t.rate_at(0.123) == 100.0

    def test_burst_mean_rate_is_preserved(self):
        """The square wave's period mean equals rate_qps exactly."""
        t = TenantConfig(
            name="a",
            rate_qps=100.0,
            burst_factor=4.0,
            burst_period_s=0.1,
            burst_duty=0.2,
        )
        times = np.linspace(0.0, 0.1, 100_000, endpoint=False)
        mean = float(np.mean([t.rate_at(x) for x in times]))
        assert mean == pytest.approx(100.0, rel=1e-3)
        assert t.rate_at(0.0) == 400.0  # in the burst window
        assert t.rate_at(0.05) == pytest.approx(25.0)  # trough

    def test_trough_clamps_at_zero(self):
        """duty * factor > 1 would need a negative trough; clamp it."""
        t = TenantConfig(
            name="a", rate_qps=100.0, burst_factor=3.0, burst_duty=0.5
        )
        assert t.rate_at(0.75) == 0.0

    def test_scaled_multiplies_rate_only(self):
        t = TenantConfig(name="a", rate_qps=100.0, slo_ms=10.0)
        s = t.scaled(2.5)
        assert s.rate_qps == 250.0
        assert s.slo_ms == 10.0 and s.name == "a"
        with pytest.raises(ConfigError):
            t.scaled(0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"rate_qps": 0.0},
            {"rate_qps": float("nan")},
            {"slo_ms": -1.0},
            {"burst_factor": 0.5},
            {"burst_period_s": 0.0},
            {"burst_duty": 1.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        base = {"name": "a", "rate_qps": 100.0}
        base.update(kwargs)
        with pytest.raises(ConfigError):
            TenantConfig(**base)


class TestArrivalGenerator:
    def test_validation(self):
        t = TenantConfig(name="a", rate_qps=10.0)
        with pytest.raises(ConfigError, match="at least one"):
            ArrivalGenerator(tenants=())
        with pytest.raises(ConfigError, match="duplicate"):
            ArrivalGenerator(tenants=(t, t))
        with pytest.raises(ConfigError, match="seed"):
            ArrivalGenerator(tenants=(t,), seed=True)
        with pytest.raises(ConfigError, match="horizon"):
            ArrivalGenerator(tenants=(t,), horizon_s=0.0)

    def test_deterministic_under_seed(self, small_dataset):
        tenants = (
            TenantConfig(name="a", rate_qps=2000.0, slo_ms=5.0),
            TenantConfig(name="b", rate_qps=1000.0, burst_factor=3.0),
        )
        runs = []
        for _ in range(2):
            gen = ArrivalGenerator(tenants=tenants, seed=7, horizon_s=0.05)
            runs.append(gen.generate(make_gens(small_dataset, tenants)))
        a, b = runs
        assert len(a) == len(b) > 0
        for x, y in zip(a, b):
            assert x.trace_id == y.trace_id
            assert x.arrival_s == y.arrival_s
            assert x.tenant == y.tenant
            assert np.array_equal(x.query, y.query)

    def test_adding_a_tenant_never_perturbs_another(self, small_dataset):
        """Tenant i draws from rng([seed, i]): streams are independent."""
        a = TenantConfig(name="a", rate_qps=2000.0)
        b = TenantConfig(name="b", rate_qps=500.0)
        solo = ArrivalGenerator(tenants=(a,), seed=7, horizon_s=0.05)
        both = ArrivalGenerator(tenants=(a, b), seed=7, horizon_s=0.05)
        solo_times = [
            r.arrival_s
            for r in solo.generate(make_gens(small_dataset, (a,)))
        ]
        both_times = [
            r.arrival_s
            for r in both.generate(make_gens(small_dataset, (a, b)))
            if r.tenant == "a"
        ]
        assert solo_times == both_times

    def test_requests_sorted_with_ids_in_arrival_order(self, small_dataset):
        tenants = (
            TenantConfig(name="a", rate_qps=2000.0),
            TenantConfig(name="b", rate_qps=2000.0),
        )
        gen = ArrivalGenerator(tenants=tenants, seed=1, horizon_s=0.05)
        requests = gen.generate(make_gens(small_dataset, tenants))
        assert len(requests) > 10
        for i, (x, y) in enumerate(zip(requests, requests[1:])):
            assert x.arrival_s <= y.arrival_s
            assert x.trace_id < y.trace_id, i  # q%06d sorts numerically

    def test_deadline_follows_slo(self, small_dataset):
        tenants = (
            TenantConfig(name="a", rate_qps=2000.0, slo_ms=5.0),
            TenantConfig(name="b", rate_qps=2000.0),
        )
        gen = ArrivalGenerator(tenants=tenants, seed=1, horizon_s=0.02)
        for req in gen.generate(make_gens(small_dataset, tenants)):
            if req.tenant == "a":
                assert req.deadline_s == pytest.approx(req.arrival_s + 0.005)
            else:
                assert math.isinf(req.deadline_s)

    def test_missing_generator_rejected(self, small_dataset):
        tenants = (TenantConfig(name="a", rate_qps=10.0),)
        gen = ArrivalGenerator(tenants=tenants, seed=1)
        with pytest.raises(ConfigError, match="no query generator"):
            gen.generate({})

    def test_mean_offered_rate_tracks_config(self, small_dataset):
        """Over a long horizon the Poisson stream hits its mean rate."""
        tenants = (TenantConfig(name="a", rate_qps=5000.0),)
        gen = ArrivalGenerator(tenants=tenants, seed=2, horizon_s=1.0)
        requests = gen.generate(make_gens(small_dataset, tenants))
        assert len(requests) == pytest.approx(5000, rel=0.1)


class TestNextQueries:
    def test_batch_aligned_draws_match_next_batch_bitwise(self, small_dataset):
        """Draws aligned to batch_size consume the rng identically to
        next_batch, so the queries are the same bits."""
        kw = dict(
            dataset=small_dataset,
            batch_size=30,
            zipf_alpha=1.0,
            drift_per_batch=0.3,
        )
        by_batch = BatchGenerator(rng=np.random.default_rng(5), **kw)
        by_request = BatchGenerator(rng=np.random.default_rng(5), **kw)
        for _ in range(3):
            assert np.array_equal(
                by_request.next_queries(30), by_batch.next_batch().queries
            )

    def test_drift_fires_every_batch_size_queries(self, small_dataset):
        """Request-granularity draws keep the batch drift cadence: the
        popularity profile holds for batch_size queries, then rotates."""
        gen = BatchGenerator(
            dataset=small_dataset,
            batch_size=30,
            zipf_alpha=1.0,
            drift_per_batch=0.3,
            rng=np.random.default_rng(5),
        )
        before = gen.popularity
        gen.next_queries(7)
        gen.next_queries(23)  # completes the first 30-query "batch"
        assert np.array_equal(gen.popularity, before)
        gen.next_queries(1)  # the 31st query crosses the boundary
        assert not np.array_equal(gen.popularity, before)

    def test_rejects_nonpositive(self, small_dataset):
        gen = BatchGenerator(dataset=small_dataset, batch_size=30)
        with pytest.raises(ConfigError):
            gen.next_queries(0)
