"""Serving-suite fixtures.

The frontend mutates its service (submitted batches, retained works,
adaptive placement), so every test builds a fresh engine from the
session-scoped dataset and prebuilt-index fixtures — training stays
amortized across the session while run state stays private per test.
"""

from __future__ import annotations

import pytest

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import UpANNSEngine
from repro.core.service import OnlineService
from repro.hardware.specs import PimSystemSpec


def build_service(
    small_dataset, trained_index, history_queries, *, batch_size: int = 30
) -> OnlineService:
    cfg = SystemConfig(
        index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=4),
        query=QueryConfig(nprobe=8, k=5, batch_size=batch_size),
        upanns=UpANNSConfig(),
        pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
    )
    engine = UpANNSEngine(cfg)
    # The frontend's stream always re-executes through the event core
    # (arrival-time release needs it); keep the per-batch core aligned.
    engine.sim_engine = "event"
    engine.build(
        small_dataset.vectors,
        history_queries=history_queries,
        prebuilt_index=trained_index,
    )
    return OnlineService(engine, overlap="sequential", sim_engine="event")


@pytest.fixture
def service_factory(small_dataset, trained_index, history_queries):
    """Builds a fresh event-core service on demand."""

    def build(**kwargs) -> OnlineService:
        return build_service(
            small_dataset, trained_index, history_queries, **kwargs
        )

    return build
