"""Batch coalescing: close triggers, tenant fairness, expiry."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serving import BatchCoalescer, Request
from repro.tracing.context import format_trace_id

_QUERY = np.zeros(4, dtype=np.float32)


def req(n, *, tenant="a", arrival=0.0, deadline=math.inf):
    return Request(
        trace_id=format_trace_id(n),
        tenant=tenant,
        query=_QUERY,
        arrival_s=arrival,
        deadline_s=deadline,
    )


class TestTriggers:
    def test_size_ready_at_max_batch(self):
        c = BatchCoalescer(tenant_names=("a",), max_batch=3)
        for n in range(2):
            c.enqueue(req(n))
        assert not c.size_ready
        c.enqueue(req(2))
        assert c.size_ready

    def test_earliest_due_follows_oldest_head(self):
        c = BatchCoalescer(tenant_names=("a", "b"), max_delay_s=0.002)
        assert math.isinf(c.earliest_due_s())
        c.enqueue(req(0, tenant="b", arrival=0.005))
        c.enqueue(req(1, tenant="a", arrival=0.001))
        assert c.earliest_due_s() == pytest.approx(0.003)

    def test_depth_accounting(self):
        c = BatchCoalescer(tenant_names=("a", "b"))
        c.enqueue(req(0, tenant="a"))
        c.enqueue(req(1, tenant="b"))
        c.enqueue(req(2, tenant="b"))
        assert c.depth("a") == 1 and c.depth("b") == 2
        assert c.total_depth == 3
        with pytest.raises(ConfigError, match="unknown tenant"):
            c.depth("nobody")
        with pytest.raises(ConfigError, match="unknown tenant"):
            c.enqueue(req(3, tenant="nobody"))


class TestFairness:
    def test_heavy_tenant_cannot_starve_a_light_one(self):
        c = BatchCoalescer(tenant_names=("heavy", "light"), max_batch=4)
        for n in range(10):
            c.enqueue(req(n, tenant="heavy"))
        c.enqueue(req(100, tenant="light", arrival=0.001))
        c.enqueue(req(101, tenant="light", arrival=0.001))
        batch = c.drain()
        assert len(batch) == 4
        # Round-robin: the light tenant holds its fair share of slots.
        assert sum(1 for r in batch if r.tenant == "light") == 2

    def test_unused_slots_go_to_whoever_has_work(self):
        c = BatchCoalescer(tenant_names=("a", "b"), max_batch=4)
        for n in range(6):
            c.enqueue(req(n, tenant="a"))
        assert len(c.drain()) == 4
        assert c.total_depth == 2

    def test_offset_rotates_between_closes(self):
        """The same tenant does not get the first slot of every batch."""
        c = BatchCoalescer(tenant_names=("a", "b"), max_batch=2)
        firsts = []
        for round_ in range(2):
            c.enqueue(req(2 * round_, tenant="a"))
            c.enqueue(req(2 * round_ + 1, tenant="b"))
            firsts.append(c.drain()[0].tenant)
        assert set(firsts) == {"a", "b"}

    def test_fifo_within_a_tenant(self):
        c = BatchCoalescer(tenant_names=("a",), max_batch=3)
        for n in range(3):
            c.enqueue(req(n, arrival=n * 1e-3))
        assert [r.trace_id for r in c.drain()] == [
            format_trace_id(n) for n in range(3)
        ]


class TestExpiry:
    def test_expire_pops_past_deadline_only(self):
        c = BatchCoalescer(tenant_names=("a", "b"))
        c.enqueue(req(0, tenant="a", arrival=0.0, deadline=0.004))
        c.enqueue(req(1, tenant="a", arrival=0.001, deadline=0.010))
        c.enqueue(req(2, tenant="b", arrival=0.002, deadline=0.003))
        expired = c.expire(0.005)
        assert [r.trace_id for r in expired] == ["q000000", "q000002"]
        assert c.total_depth == 1
        assert c.drain()[0].trace_id == "q000001"

    def test_expire_keeps_queue_order(self):
        c = BatchCoalescer(tenant_names=("a",))
        c.enqueue(req(0, arrival=0.0, deadline=0.001))
        c.enqueue(req(1, arrival=0.002))
        c.enqueue(req(2, arrival=0.003))
        c.expire(0.002)
        assert [r.trace_id for r in c.drain()] == ["q000001", "q000002"]


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tenant_names": ()},
            {"tenant_names": ("a",), "max_batch": 0},
            {"tenant_names": ("a",), "max_batch": True},
            {"tenant_names": ("a",), "max_delay_s": -1.0},
            {"tenant_names": ("a",), "max_delay_s": float("nan")},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            BatchCoalescer(**kwargs)
