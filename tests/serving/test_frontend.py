"""The serving frontend: degenerate parity, overload, timeouts, faults.

Four contracts:

1. **Degenerate bit-identity.**  A single tenant with no deadline and
   ``shedding=False`` reproduces plain ``OnlineService.submit`` results
   bit-for-bit — the frontend costs nothing when its features are off.
2. **Conservation.**  ``offered == admitted + shed + timed_out`` holds
   exactly on every run, overloaded or not.
3. **Overload response.**  Under ~2x offered load the shedding frontend
   keeps admitted p99 within the SLO while the no-shedding baseline's
   p99 diverges; coverage never crosses the configured floor.
4. **Faults compose.**  A DPU dying mid-run under overload triggers
   recovery, keeps the ledger exact and leaves the combined stream
   schedule sanitizer-clean.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_queries, zipf_weights
from repro.errors import ConfigError
from repro.faults import FaultPlan, pick_replicated_unit
from repro.sanitize import sanitize_schedule
from repro.serving import (
    STATUS_COMPLETED,
    STATUS_SHED,
    STATUS_TIMED_OUT,
    AdmissionPolicy,
    ArrivalGenerator,
    FrontendResult,
    Request,
    ServingFrontend,
    TenantConfig,
)
from repro.serving.report import percentile_ms
from repro.sim import HOST_CPU, STAGE_CANCEL, STAGE_SHED
from repro.telemetry import reset_metrics, snapshot
from repro.tracing import explain_query, make_trace_record
from repro.tracing.context import format_trace_id
from repro.workload.batch import BatchGenerator

from tests.serving.conftest import build_service

SLO_MS = 20.0


def trickle(queries, *, gap_s=1e-6, slo_ms=None, tenant="solo"):
    """Requests arriving ``gap_s`` apart, ids in arrival order."""
    out = []
    for i, q in enumerate(queries):
        t = i * gap_s
        deadline = t + slo_ms / 1e3 if slo_ms is not None else float("inf")
        out.append(
            Request(
                trace_id=format_trace_id(i),
                tenant=tenant,
                query=q,
                arrival_s=t,
                deadline_s=deadline,
            )
        )
    return out


def calibrate_capacity_qps(service_factory, *, batch_size=30) -> float:
    """Closed-loop capacity of the test deployment, in queries/s."""
    service = service_factory(batch_size=batch_size)
    dim = service.engine.config.index.dim
    rng = np.random.default_rng(99)
    totals = []
    for _ in range(3):
        queries = rng.standard_normal((batch_size, dim)).astype(np.float32)
        totals.append(service.submit(queries).result.timing.total_s)
    return batch_size / (sum(totals) / len(totals))


def overload_run(
    service_factory,
    small_dataset,
    *,
    load: float,
    shedding: bool,
    policy_kwargs: dict | None = None,
    horizon_s: float = 0.06,
    slo_ms: float = SLO_MS,
) -> FrontendResult:
    """One seeded open-loop run at ``load`` times calibrated capacity."""
    capacity = calibrate_capacity_qps(service_factory)
    tenants = (
        TenantConfig(
            name="interactive",
            rate_qps=capacity * load * 2.0 / 3.0,
            slo_ms=slo_ms,
            zipf_alpha=0.8,
        ),
        TenantConfig(
            name="batchy",
            rate_qps=capacity * load / 3.0,
            burst_factor=4.0,
            burst_period_s=0.01,
            burst_duty=0.25,
            zipf_alpha=1.2,
        ),
    )
    generator = ArrivalGenerator(tenants=tenants, seed=5, horizon_s=horizon_s)
    query_gens = {
        t.name: BatchGenerator(
            dataset=small_dataset,
            batch_size=30,
            zipf_alpha=t.zipf_alpha,
            rng=np.random.default_rng([5, i]),
        )
        for i, t in enumerate(tenants)
    }
    requests = generator.generate(query_gens)
    assert requests, "calibrated overload run must offer traffic"
    frontend = ServingFrontend(
        service=service_factory(),
        tenants=tenants,
        policy=AdmissionPolicy(shedding=shedding, **(policy_kwargs or {})),
        max_batch=30,
        max_delay_s=0.003,
    )
    return frontend.run(requests)


def assert_conservation(result: FrontendResult) -> dict:
    ledger = result.ledger()
    totals = ledger["totals"]
    assert totals["offered"] == len(result.requests)
    assert (
        totals["offered"]
        == totals["admitted"] + totals["shed"] + totals["timed_out"]
    )
    for row in ledger["tenants"].values():
        assert (
            row["offered"] == row["admitted"] + row["shed"] + row["timed_out"]
        )
        assert sum(row["shed_by_reason"].values()) == row["shed"]
    return totals


class TestDegenerateParity:
    def test_closed_loop_matches_service_bit_for_bit(
        self, service_factory, small_dataset
    ):
        """Single tenant, no SLO, shedding off: plain submit, exactly."""
        queries = make_queries(
            small_dataset,
            60,
            popularity=zipf_weights(24, 0.8),
            rng=np.random.default_rng(21),
        )
        frontend = ServingFrontend(
            service=service_factory(),
            tenants=(TenantConfig(name="solo", rate_qps=1.0),),
            policy=AdmissionPolicy(shedding=False),
            max_batch=30,
        )
        result = frontend.run(trickle(queries))

        reference = service_factory()
        ref_reports = [
            reference.submit(queries[:30]),
            reference.submit(queries[30:]),
        ]

        assert len(result.reports) == 2
        for got, want in zip(result.reports, ref_reports):
            assert np.array_equal(got.result.ids, want.result.ids)
            assert np.array_equal(got.result.distances, want.result.distances)
            # Timings too: the frontend added no modeled work.
            assert got.result.timing.total_s == want.result.timing.total_s
            assert got.result.degraded is None
        # Frontend trace ids are the ids the service itself would mint
        # (sequential from intake), so span identities line up too.
        for b in range(2):
            batch_reqs = [r for r in result.requests if r.batch == b]
            assert [r.trace_id for r in batch_reqs] == [
                format_trace_id(30 * b + i) for i in range(30)
            ]

        totals = assert_conservation(result)
        assert totals["admitted"] == 60
        assert totals["shed"] == 0 and totals["timed_out"] == 0
        assert all(r.status == STATUS_COMPLETED for r in result.requests)
        assert result.coverage_floor() == 1.0
        assert sanitize_schedule(result.schedule) == []

    def test_latencies_cover_queue_wait(self, service_factory, small_dataset):
        """Request latency is measured from arrival, not batch close."""
        queries = make_queries(
            small_dataset, 30, rng=np.random.default_rng(22)
        )
        frontend = ServingFrontend(
            service=service_factory(),
            tenants=(TenantConfig(name="solo", rate_qps=1.0),),
            policy=AdmissionPolicy(shedding=False),
            max_batch=30,
        )
        result = frontend.run(trickle(queries, gap_s=1e-5))
        lats = result.latencies_ms()
        assert lats.size == 30
        assert np.all(lats > 0)
        # The first arrival waited for the whole coalescing window; the
        # last barely waited — so latencies are not all equal.
        assert lats.max() > lats.min()


class TestValidation:
    def test_unsorted_arrivals_rejected(self, service_factory, small_dataset):
        queries = make_queries(small_dataset, 2, rng=np.random.default_rng(1))
        frontend = ServingFrontend(
            service=service_factory(),
            tenants=(TenantConfig(name="solo", rate_qps=1.0),),
        )
        reqs = trickle(queries)
        reqs.reverse()
        with pytest.raises(ConfigError, match="sorted"):
            frontend.run(reqs)

    def test_needs_a_tenant(self, service_factory):
        with pytest.raises(ConfigError, match="tenant"):
            ServingFrontend(service=service_factory(), tenants=())

    def test_bad_ewma_alpha_rejected(self, service_factory):
        with pytest.raises(ConfigError, match="ewma_alpha"):
            ServingFrontend(
                service=service_factory(),
                tenants=(TenantConfig(name="solo", rate_qps=1.0),),
                ewma_alpha=0.0,
            )


class TestOverload:
    @pytest.fixture(scope="class")
    def overload_pair(self, small_dataset, trained_index, history_queries):
        """The 2x-overload run, with and without shedding (same seed)."""

        def factory(**kw):
            return build_service(
                small_dataset, trained_index, history_queries, **kw
            )

        shed = overload_run(
            factory, small_dataset, load=2.0, shedding=True
        )
        base = overload_run(
            factory, small_dataset, load=2.0, shedding=False
        )
        return shed, base

    def test_conservation_exact_under_overload(self, overload_pair):
        shed, base = overload_pair
        totals = assert_conservation(shed)
        assert totals["shed"] + totals["timed_out"] > 0
        base_totals = assert_conservation(base)
        assert base_totals["shed"] == 0 and base_totals["timed_out"] == 0

    def test_same_seed_same_offered_traffic(self, overload_pair):
        shed, base = overload_pair
        assert len(shed.requests) == len(base.requests)
        for a, b in zip(shed.requests, base.requests):
            assert a.trace_id == b.trace_id
            assert a.arrival_s == b.arrival_s
            assert a.tenant == b.tenant

    def test_shedding_keeps_admitted_p99_within_slo(self, overload_pair):
        shed, base = overload_pair
        shed_p99 = percentile_ms(shed.latencies_ms("interactive"), 99)
        base_p99 = percentile_ms(base.latencies_ms("interactive"), 99)
        assert shed_p99 <= SLO_MS
        assert base_p99 > SLO_MS
        assert shed.goodput_qps() > base.goodput_qps()

    def test_coverage_never_crosses_the_floor(self, overload_pair):
        shed, _base = overload_pair
        policy_floor = AdmissionPolicy().min_coverage
        assert policy_floor - 1e-12 <= shed.coverage_floor() <= 1.0
        for req in shed.by_status(STATUS_COMPLETED):
            assert req.nprobe is not None and req.nprobe >= 1

    def test_schedules_stay_sanitizer_clean(self, overload_pair):
        shed, base = overload_pair
        assert sanitize_schedule(shed.schedule) == []
        assert sanitize_schedule(base.schedule) == []

    def test_shed_requests_own_spans(self, overload_pair):
        shed, _base = overload_pair
        rejected = shed.by_status(STATUS_SHED)
        assert rejected, "2x overload must shed"
        shed_span_ids = set()
        for span in shed.schedule.timeline(HOST_CPU).spans:
            if span.stage == STAGE_SHED and span.trace is not None:
                shed_span_ids.update(span.trace.trace_ids)
        for req in rejected:
            assert req.trace_id in shed_span_ids
            assert req.shed_reason is not None
            assert req.latency_s is not None and req.latency_s >= 0.0

    def test_explain_annotates_a_shed_request(self, overload_pair):
        shed, _base = overload_pair
        record = make_trace_record(
            name="overload", config={}, schedule=shed.schedule
        )
        victim = shed.by_status(STATUS_SHED)[0]
        exp = explain_query(record, victim.trace_id)
        notes = " ".join(c.annotation for c in exp.ranked)
        assert "shed at intake" in notes

    def test_metrics_exported(
        self, small_dataset, trained_index, history_queries
    ):
        reset_metrics()

        def factory(**kw):
            return build_service(
                small_dataset, trained_index, history_queries, **kw
            )

        result = overload_run(
            factory, small_dataset, load=2.0, shedding=True, horizon_s=0.02
        )
        totals = result.ledger()["totals"]
        snap = snapshot()
        by_name = {m["name"]: m for m in snap["metrics"]}
        offered = sum(
            s["value"] for s in by_name["repro_serving_offered_total"]["samples"]
        )
        shed_count = sum(
            s["value"] for s in by_name["repro_serving_shed_total"]["samples"]
        )
        assert offered == totals["offered"]
        assert shed_count == totals["shed"]
        assert by_name["repro_serving_goodput_qps"]["samples"][0]["value"] > 0


class TestTimeouts:
    def test_queued_requests_time_out_past_deadline(
        self, service_factory, small_dataset
    ):
        """Deep queues + a tight SLO: waiting requests get cancelled."""
        result = overload_run(
            service_factory,
            small_dataset,
            load=3.0,
            shedding=True,
            slo_ms=1.0,
            horizon_s=0.02,
            # Huge queues and a toothless predictor: requests must be
            # admitted first to die waiting.
            policy_kwargs={
                "max_queue_depth": 10_000,
                "predicted_wait_slack": 1e6,
            },
        )
        totals = assert_conservation(result)
        assert totals["timed_out"] > 0
        cancelled = result.by_status(STATUS_TIMED_OUT)
        cancel_ids = set()
        for span in result.schedule.timeline(HOST_CPU).spans:
            if span.stage == STAGE_CANCEL and span.trace is not None:
                cancel_ids.update(span.trace.trace_ids)
        for req in cancelled:
            assert req.trace_id in cancel_ids
            # Admitted, then cancelled: it reached the queue.
            assert req.admitted_s is not None
        assert sanitize_schedule(result.schedule) == []


class TestFaultInteraction:
    def test_dpu_death_under_overload_recovers_and_reconciles(
        self, small_dataset, trained_index, history_queries
    ):
        """Satellite: a tenant being shed while a DPU dies mid-flight."""
        service = build_service(small_dataset, trained_index, history_queries)
        target = pick_replicated_unit(service.engine.placement)
        assert target is not None
        service.engine.inject(FaultPlan.from_specs([f"dpu:{target}@1"]))

        # Calibrate on a fresh fault-free service; run on the armed one.
        capacity = calibrate_capacity_qps(
            lambda **kw: build_service(
                small_dataset, trained_index, history_queries, **kw
            )
        )
        tenants = (
            TenantConfig(
                name="interactive",
                rate_qps=capacity * 2.0,
                slo_ms=SLO_MS,
            ),
        )
        generator = ArrivalGenerator(tenants=tenants, seed=9, horizon_s=0.03)
        gens = {
            "interactive": BatchGenerator(
                dataset=small_dataset,
                batch_size=30,
                rng=np.random.default_rng([9, 0]),
            )
        }
        frontend = ServingFrontend(
            service=service,
            tenants=tenants,
            policy=AdmissionPolicy(shedding=True),
            max_batch=30,
            max_delay_s=0.003,
        )
        result = frontend.run(generator.generate(gens))

        totals = assert_conservation(result)
        assert totals["shed"] + totals["timed_out"] > 0
        assert len(result.reports) > 1
        # The death fired and the service recovered around it.
        assert service.engine.fault_state is not None
        assert target in service.engine.fault_state.dead
        assert service.recovery_count >= 1
        # Coverage stayed positive on every batch, and the combined
        # stream (shed charges + kill fence included) is ledger-clean.
        assert 0.0 < result.coverage_floor() <= 1.0
        assert sanitize_schedule(result.schedule) == []
