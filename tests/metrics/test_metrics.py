"""Metric helper tests."""

import pytest

from repro.errors import ConfigError
from repro.hardware.counters import StageCycles
from repro.metrics import (
    LatencyStats,
    breakdown_percentages,
    dominant_stage,
    format_breakdown,
    geometric_mean,
    normalize_to,
    qps,
    speedup,
)


class TestQps:
    def test_qps(self):
        assert qps(1000, 2.0) == 500.0

    def test_qps_invalid_time(self):
        with pytest.raises(ConfigError):
            qps(10, 0.0)

    def test_speedup(self):
        assert speedup(430.0, 100.0) == pytest.approx(4.3)

    def test_speedup_invalid(self):
        with pytest.raises(ConfigError):
            speedup(1.0, 0.0)


class TestNormalize:
    def test_normalize_to_reference(self):
        out = normalize_to({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_missing_reference(self):
        with pytest.raises(ConfigError):
            normalize_to({"a": 1.0}, "b")

    def test_zero_reference(self):
        with pytest.raises(ConfigError):
            normalize_to({"a": 0.0}, "a")


class TestLatency:
    def test_per_query_ms(self):
        s = LatencyStats(batch_size=100, batch_seconds=0.2)
        assert s.per_query_ms == pytest.approx(2.0)
        assert s.qps == pytest.approx(500.0)


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ConfigError):
            geometric_mean([])


class TestBreakdown:
    def test_percentages_sum_100(self):
        s = StageCycles(cluster_filter=1, lut_construction=2, distance_calc=3, topk_selection=4)
        pct = breakdown_percentages(s)
        assert sum(pct.values()) == pytest.approx(100.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            breakdown_percentages(StageCycles())

    def test_dominant_stage(self):
        s = StageCycles(distance_calc=10, topk_selection=1)
        assert dominant_stage(s) == "distance_calc"

    def test_format_contains_labels(self):
        s = StageCycles(distance_calc=99, topk_selection=1)
        text = format_breakdown(s, label="CPU")
        assert "CPU:" in text
        assert "distance calculation" in text

    def test_stage_cycles_merge_and_scale(self):
        a = StageCycles(distance_calc=10)
        a += StageCycles(distance_calc=5, topk_selection=1)
        assert a.distance_calc == 15
        scaled = a.scaled(2.0)
        assert scaled.distance_calc == 30
        assert a.distance_calc == 15  # scaled() copies

    def test_fractions_of_empty(self):
        assert StageCycles().fractions()["distance_calc"] == 0.0
