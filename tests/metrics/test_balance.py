"""max_mean_ratio edge cases (Figure 11's balance metric)."""

import numpy as np
import pytest

from repro.metrics.balance import max_mean_ratio


class TestDegenerateInputs:
    def test_empty_is_balanced(self):
        assert max_mean_ratio([]) == 1.0
        assert max_mean_ratio(np.zeros(0)) == 1.0

    def test_all_zero_is_balanced(self):
        assert max_mean_ratio([0.0, 0.0, 0.0]) == 1.0

    def test_all_zero_active_only(self):
        assert max_mean_ratio([0.0, 0.0], active_only=True) == 1.0

    def test_single_value(self):
        assert max_mean_ratio([7.0]) == 1.0


class TestRatios:
    def test_uniform_load_is_one(self):
        assert max_mean_ratio([4.0, 4.0, 4.0]) == pytest.approx(1.0)

    def test_imbalance_measured(self):
        # mean = 2, max = 4.
        assert max_mean_ratio([0.0, 2.0, 4.0]) == pytest.approx(2.0)

    def test_active_only_ignores_idle_workers(self):
        values = [0.0, 0.0, 3.0, 3.0]
        assert max_mean_ratio(values) == pytest.approx(2.0)
        assert max_mean_ratio(values, active_only=True) == pytest.approx(1.0)

    def test_active_only_max_still_global(self):
        # Idle workers drop from the mean but never from the max.
        assert max_mean_ratio([0.0, 1.0, 5.0], active_only=True) == pytest.approx(
            5.0 / 3.0
        )

    def test_accepts_integer_arrays(self):
        assert max_mean_ratio(np.array([1, 1, 4])) == pytest.approx(2.0)
