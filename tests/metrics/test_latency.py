"""LatencyRecorder tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.metrics.latency import LatencyRecorder


class TestRecording:
    def test_counts(self):
        rec = LatencyRecorder()
        rec.record(100, 0.1)
        rec.record(50, 0.2)
        assert rec.n_batches == 2
        assert rec.total_queries == 150

    def test_invalid_observation(self):
        rec = LatencyRecorder()
        with pytest.raises(ConfigError):
            rec.record(0, 0.1)
        with pytest.raises(ConfigError):
            rec.record(10, -1.0)

    def test_record_batch_result(self, small_dataset, trained_index, small_queries):
        from repro.config import IndexConfig, QueryConfig, SystemConfig
        from repro.core.engine import UpANNSEngine
        from repro.hardware.specs import PimSystemSpec

        cfg = SystemConfig(
            index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=2),
            query=QueryConfig(nprobe=4, k=5, batch_size=40),
            pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
        )
        eng = UpANNSEngine(cfg)
        eng.build(small_dataset.vectors, prebuilt_index=trained_index)
        rec = LatencyRecorder()
        rec.record_batch_result(eng.search_batch(small_queries))
        assert rec.total_queries == len(small_queries)
        assert rec.mean_qps() > 0


class TestStatistics:
    def test_per_query_ms(self):
        rec = LatencyRecorder()
        rec.record(10, 0.01)  # 1 ms/query
        rec.record(10, 0.02)  # 2 ms/query
        np.testing.assert_allclose(rec.per_query_ms(), [1.0, 2.0])

    def test_percentiles_ordered(self):
        rec = LatencyRecorder()
        rng = np.random.default_rng(0)
        for s in rng.uniform(0.01, 0.1, size=100):
            rec.record(10, float(s))
        assert rec.percentile_ms(50) <= rec.percentile_ms(95) <= rec.percentile_ms(99)

    def test_summary_keys(self):
        rec = LatencyRecorder()
        rec.record(10, 0.01)
        s = rec.summary()
        assert set(s) == {"p50_ms", "p95_ms", "p99_ms", "mean_qps"}
        assert s["mean_qps"] == pytest.approx(1000.0)

    def test_empty_recorder_rejects_stats(self):
        with pytest.raises(ConfigError):
            LatencyRecorder().per_query_ms()
        with pytest.raises(ConfigError):
            LatencyRecorder().mean_qps()

    def test_bad_percentile(self):
        rec = LatencyRecorder()
        rec.record(1, 0.001)
        with pytest.raises(ConfigError):
            rec.percentile_ms(150)
        with pytest.raises(ConfigError):
            rec.percentile_ms(-1)

    def test_empty_recorder_rejects_percentiles(self):
        with pytest.raises(ConfigError):
            LatencyRecorder().percentile_ms(50)
        with pytest.raises(ConfigError):
            LatencyRecorder().summary()

    def test_single_batch_percentiles_collapse(self):
        rec = LatencyRecorder()
        rec.record(10, 0.05)  # 5 ms/query
        for q in (0, 50, 95, 99, 100):
            assert rec.percentile_ms(q) == pytest.approx(5.0)

    def test_zero_seconds_batch_is_legal_but_unrateable(self):
        rec = LatencyRecorder()
        rec.record(10, 0.0)
        assert rec.per_query_ms()[0] == 0.0
        with pytest.raises(ConfigError):
            rec.mean_qps()  # no elapsed time to divide by
