"""Timeline-derived timings equal the pre-refactor scalars bit-for-bit.

``golden_timings.json`` was captured by running the seeded configs below
against the last additive-scalar revision (every value stored as
``float.hex()``).  The refactor's contract is exact equality — not
approximate — for every ``BatchTiming`` field, every ``StageCycles``
field and the cycle load ratio, across the UpANNS, PIM-naive, scaled,
and IVFFlat pipelines, plus the multi-host decomposition.

The suite also asserts the structural span invariants the timelines
must uphold on real engine output.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.baselines.pim_naive import PIM_NAIVE_CONFIG
from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import UpANNSEngine
from repro.core.flat_engine import IVFFlatPimEngine
from repro.core.multihost import MultiHostEngine
from repro.hardware.specs import PimSystemSpec
from repro.sim import STAGE_TRANSFER_IN, validate_chrome_trace

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_timings.json").read_text()
)


def pim_spec() -> PimSystemSpec:
    return PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8)


def ivfpq_config(upanns=None, timing_scale=1.0) -> SystemConfig:
    return SystemConfig(
        index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=6),
        query=QueryConfig(nprobe=8, k=5, batch_size=40),
        upanns=upanns if upanns is not None else UpANNSConfig(),
        pim=pim_spec(),
        timing_scale=timing_scale,
    )


@pytest.fixture(scope="module")
def flat_index(small_dataset):
    import numpy as np

    from repro.ivfpq.ivfflat import IVFFlatIndex

    index = IVFFlatIndex(dim=32, n_clusters=32)
    index.train(small_dataset.vectors, n_iter=6, rng=np.random.default_rng(3))
    index.add(small_dataset.vectors)
    return index


def build_ivfpq(name, small_dataset, history_queries, trained_index):
    upanns, scale = {
        "upanns": (UpANNSConfig(), 1.0),
        "pim_naive": (PIM_NAIVE_CONFIG, 1.0),
        "upanns_scaled": (UpANNSConfig(), 500.0),
    }[name]
    engine = UpANNSEngine(ivfpq_config(upanns=upanns, timing_scale=scale))
    return engine.build(
        small_dataset.vectors,
        history_queries=history_queries,
        prebuilt_index=trained_index,
    )


def assert_timing_golden(result, golden: dict) -> None:
    timing = result.timing
    expected = golden["timing"]
    for name in (
        "host_filter_s",
        "host_schedule_s",
        "transfer_in_s",
        "dpu_makespan_s",
        "transfer_out_s",
        "host_aggregate_s",
        "total_s",
    ):
        assert getattr(timing, name) == float.fromhex(expected[name]), name
    for name, hexval in golden["stage_seconds"].items():
        assert getattr(result.stage_seconds, name) == float.fromhex(hexval), name
    assert result.cycle_load_ratio == float.fromhex(golden["cycle_load_ratio"])


def assert_span_invariants(schedule) -> None:
    assert schedule is not None
    for resource, tl in schedule.timelines.items():
        for span in tl.spans:
            assert span.duration >= 0.0, resource
            assert span.t0 >= 0.0, resource
        for prev, cur in zip(tl.spans, tl.spans[1:]):
            assert cur.t0 >= prev.t1, f"overlap on {resource}"
    if schedule.timelines:
        assert schedule.makespan == max(
            tl.end for tl in schedule.timelines.values()
        )


_IVFPQ_RESULTS: dict[str, object] = {}


@pytest.mark.parametrize("name", ["upanns", "pim_naive", "upanns_scaled"])
class TestIvfpqGolden:
    @pytest.fixture
    def result(self, name, small_dataset, history_queries, trained_index,
               small_queries):
        # Built once per config (the engine build is the slow part) and
        # cached across the parametrized tests.
        if name not in _IVFPQ_RESULTS:
            engine = build_ivfpq(
                name, small_dataset, history_queries, trained_index
            )
            _IVFPQ_RESULTS[name] = engine.search_batch(small_queries)
        return _IVFPQ_RESULTS[name]

    def test_timing_bit_for_bit(self, name, result):
        assert_timing_golden(result, GOLDEN[name])

    def test_span_invariants(self, name, result):
        assert_span_invariants(result.schedule)
        assert result.schedule.stage_seconds(STAGE_TRANSFER_IN) > 0

    def test_trace_exports_clean(self, name, result):
        assert validate_chrome_trace(result.schedule.to_chrome_trace()) == []


class TestFlatGolden:
    @pytest.fixture(scope="class")
    def result(self, small_dataset, history_queries, flat_index, small_queries):
        cfg = SystemConfig(
            index=IndexConfig(dim=32, n_clusters=32, m=4, train_iters=4),
            query=QueryConfig(nprobe=8, k=5, batch_size=40),
            upanns=UpANNSConfig(enable_cae=False),
            pim=pim_spec(),
            timing_scale=200.0,
        )
        engine = IVFFlatPimEngine(cfg)
        engine.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=flat_index,
        )
        return engine.search_batch(small_queries)

    def test_timing_bit_for_bit(self, result):
        assert_timing_golden(result, GOLDEN["flat"])

    def test_span_invariants(self, result):
        assert_span_invariants(result.schedule)


class TestMultiHostGolden:
    @pytest.fixture(scope="class")
    def result(self, small_dataset, history_queries, trained_index,
               small_queries):
        engine = MultiHostEngine(
            host_configs=[ivfpq_config(), ivfpq_config(), ivfpq_config()]
        )
        engine.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=trained_index,
        )
        return engine.search_batch(small_queries)

    def test_components_bit_for_bit(self, result):
        golden = GOLDEN["multihost"]
        for name in (
            "coordinator_filter_s",
            "distribute_s",
            "host_makespan_s",
            "gather_s",
            "merge_s",
        ):
            assert getattr(result, name) == float.fromhex(golden[name]), name

    def test_routing_is_now_charged(self, result):
        """The satellite fix: Algorithm-2-at-host-granularity cost is no
        longer silently dropped."""
        assert result.route_s > 0
        assert result.total_s > sum(
            float.fromhex(GOLDEN["multihost"][n])
            for n in (
                "coordinator_filter_s",
                "distribute_s",
                "host_makespan_s",
                "gather_s",
                "merge_s",
            )
        )

    def test_span_invariants(self, result):
        assert_span_invariants(result.schedule)
        assert validate_chrome_trace(result.schedule.to_chrome_trace()) == []


def assert_schedules_bitwise_equal(analytic, event) -> None:
    """Same lanes in the same order, same spans bit-for-bit."""
    assert list(analytic.timelines) == list(event.timelines)
    for name, tl in analytic.timelines.items():
        got = event.timelines[name].spans
        assert len(tl.spans) == len(got), name
        for a, b in zip(tl.spans, got):
            assert a.t0.hex() == b.t0.hex(), name
            assert a.t1.hex() == b.t1.hex(), name
            assert (a.stage, a.cycles) == (b.stage, b.cycles), name


class TestEventCoreGolden:
    """The event core is a *degenerate* mode on single batches: per-batch
    DAGs admit no contention, so the discrete-event run must reproduce
    the pinned analytic timings bit-for-bit for every engine."""

    @pytest.mark.parametrize("name", ["upanns", "pim_naive", "upanns_scaled"])
    def test_ivfpq_engines_bit_for_bit(
        self, name, small_dataset, history_queries, trained_index, small_queries
    ):
        engine = build_ivfpq(
            name, small_dataset, history_queries, trained_index
        )
        engine.sim_engine = "analytic"
        analytic = engine.search_batch(small_queries)
        engine.sim_engine = "event"
        event = engine.search_batch(small_queries)
        assert_timing_golden(event, GOLDEN[name])
        assert_schedules_bitwise_equal(analytic.schedule, event.schedule)

    def test_flat_engine_bit_for_bit(
        self, small_dataset, history_queries, flat_index, small_queries
    ):
        cfg = SystemConfig(
            index=IndexConfig(dim=32, n_clusters=32, m=4, train_iters=4),
            query=QueryConfig(nprobe=8, k=5, batch_size=40),
            upanns=UpANNSConfig(enable_cae=False),
            pim=pim_spec(),
            timing_scale=200.0,
        )
        engine = IVFFlatPimEngine(cfg)
        engine.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=flat_index,
        )
        engine.sim_engine = "analytic"
        analytic = engine.search_batch(small_queries)
        engine.sim_engine = "event"
        event = engine.search_batch(small_queries)
        assert_timing_golden(event, GOLDEN["flat"])
        assert_schedules_bitwise_equal(analytic.schedule, event.schedule)

    def test_multihost_bit_for_bit(
        self, small_dataset, history_queries, trained_index, small_queries
    ):
        engine = MultiHostEngine(
            host_configs=[ivfpq_config(), ivfpq_config(), ivfpq_config()]
        )
        engine.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=trained_index,
        )

        def set_mode(mode: str) -> None:
            engine.sim_engine = mode
            for host in engine.hosts:
                if host is not None:
                    host.sim_engine = mode

        set_mode("analytic")
        analytic = engine.search_batch(small_queries)
        set_mode("event")
        event = engine.search_batch(small_queries)
        golden = GOLDEN["multihost"]
        for name in (
            "coordinator_filter_s",
            "distribute_s",
            "host_makespan_s",
            "gather_s",
            "merge_s",
        ):
            assert getattr(event, name) == float.fromhex(golden[name]), name
        assert_schedules_bitwise_equal(analytic.schedule, event.schedule)
