"""Overlap composition: sequential barriers vs. double buffering."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.hardware.counters import StageCycles
from repro.sim import (
    HOST_CPU,
    STAGE_AGGREGATE,
    STAGE_CLUSTER_FILTER,
    STAGE_SCHEDULE,
    STAGE_TRANSFER_IN,
    STAGE_TRANSFER_OUT,
    BatchSchedule,
    compose,
    compose_double_buffer,
    compose_sequential,
    pipeline_wallclock,
    validate_chrome_trace,
)


def make_batch(
    *,
    filter_s: float = 1.0,
    tin_s: float = 2.0,
    dpu_cycles: float = 3.5e8,  # 1 s at 350 MHz
    tout_s: float = 0.5,
    agg_s: float = 0.25,
) -> BatchSchedule:
    """A synthetic single-batch schedule shaped like the engines emit."""
    sched = BatchSchedule(dpu_frequency_hz=350e6)
    sched.record(HOST_CPU, STAGE_CLUSTER_FILTER, filter_s)
    sched.record(HOST_CPU, STAGE_SCHEDULE, 0.1)
    sched.record_at(
        "pim_bus", STAGE_TRANSFER_IN, sched.timeline(HOST_CPU).end, tin_s
    )
    bus_end = sched.timeline("pim_bus").end
    sched.record_dpu_stages(
        0, StageCycles(distance_calc=dpu_cycles), start_s=bus_end
    )
    dpu_end = sched.timeline("dpu/0").end
    sched.record_at("pim_bus", STAGE_TRANSFER_OUT, dpu_end, tout_s)
    sched.record_at(
        HOST_CPU, STAGE_AGGREGATE, sched.timeline("pim_bus").end, agg_s
    )
    return sched


def assert_no_overlap(schedule: BatchSchedule) -> None:
    for tl in schedule.timelines.values():
        for prev, cur in zip(tl.spans, tl.spans[1:]):
            assert cur.t0 >= prev.t1 - 1e-12 * max(1.0, abs(prev.t1))


class TestSequential:
    def test_single_batch_is_identity_shaped(self):
        batch = make_batch()
        combined = compose_sequential([batch])
        assert combined.makespan == pytest.approx(batch.makespan)

    def test_makespan_is_sum_of_batches(self):
        batches = [make_batch() for _ in range(3)]
        combined = compose_sequential(batches)
        assert combined.makespan == pytest.approx(
            sum(b.makespan for b in batches)
        )

    def test_no_overlap_per_resource(self):
        combined = compose_sequential([make_batch() for _ in range(4)])
        assert_no_overlap(combined)

    def test_empty_input(self):
        assert compose_sequential([]).makespan == 0.0


class TestDoubleBuffer:
    def test_single_batch_matches_sequential(self):
        batch = make_batch()
        seq = compose_sequential([batch]).makespan
        db = compose_double_buffer([batch]).makespan
        assert db == pytest.approx(seq)

    def test_multi_batch_is_strictly_faster(self):
        """With nonzero transfer-in there is always time to hide."""
        batches = [make_batch() for _ in range(4)]
        seq = pipeline_wallclock(batches, "sequential")
        db = pipeline_wallclock(batches, "double_buffer")
        assert db < seq

    def test_hides_at_most_the_front_end(self):
        """The win per pipelined batch is bounded by its prep+transfer-in."""
        batches = [make_batch() for _ in range(4)]
        seq = pipeline_wallclock(batches, "sequential")
        db = pipeline_wallclock(batches, "double_buffer")
        front_end = 1.0 + 0.1 + 2.0  # filter + schedule + tin per batch
        assert seq - db <= 3 * front_end + 1e-9

    def test_no_overlap_per_resource(self):
        combined = compose_double_buffer([make_batch() for _ in range(4)])
        assert_no_overlap(combined)

    def test_composed_trace_is_valid(self):
        combined = compose_double_buffer([make_batch() for _ in range(3)])
        assert validate_chrome_trace(combined.to_chrome_trace()) == []

    def test_dpu_work_is_preserved(self):
        batches = [make_batch() for _ in range(3)]
        combined = compose_double_buffer(batches)
        total_cycles = sum(
            tl.busy_cycles() for tl in combined.dpu_timelines()
        )
        assert total_cycles == pytest.approx(3 * 3.5e8)

    def test_zero_transfer_in_gives_no_benefit_beyond_prep(self):
        batches = [
            make_batch(filter_s=0.0, tin_s=0.0) for _ in range(3)
        ]
        seq = pipeline_wallclock(batches, "sequential")
        db = pipeline_wallclock(batches, "double_buffer")
        # Only the 0.1 s schedule span and the aggregate offload remain
        # hideable; the bulk of the timeline is unchanged.
        assert db <= seq + 1e-9


class TestDispatch:
    def test_compose_dispatches(self):
        batches = [make_batch()]
        assert compose(batches, "sequential").makespan == pytest.approx(
            compose_sequential(batches).makespan
        )

    def test_unknown_mode_raises(self):
        with pytest.raises(ConfigError):
            compose([make_batch()], "triple_buffer")

    def test_compose_empty_sequence_raises(self):
        """An empty run has no schedule to compose — callers asking for
        a combined run-level view before serving anything get a clear
        error instead of a silent zero-makespan schedule."""
        for mode in ("sequential", "double_buffer"):
            with pytest.raises(ValueError, match="empty"):
                compose([], mode)

    def test_pipeline_wallclock_empty_sequence_raises(self):
        with pytest.raises(ValueError, match="empty"):
            pipeline_wallclock([], "sequential")

    def test_low_level_composers_still_accept_empty(self):
        """Incremental callers build onto compose_sequential([]) — the
        guard lives in the run-level entry points only."""
        assert compose_sequential([]).makespan == 0.0
        assert compose_double_buffer([]).makespan == 0.0


class TestServiceIntegration:
    @pytest.fixture(scope="class")
    def engine(self, small_dataset, history_queries, trained_index):
        from repro.config import (
            IndexConfig,
            QueryConfig,
            SystemConfig,
            UpANNSConfig,
        )
        from repro.core.engine import UpANNSEngine
        from repro.hardware.specs import PimSystemSpec

        cfg = SystemConfig(
            index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=6),
            query=QueryConfig(nprobe=8, k=5, batch_size=10),
            upanns=UpANNSConfig(),
            pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
        )
        return UpANNSEngine(cfg).build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=trained_index,
        )

    def serve(self, engine, queries, overlap: str) -> "object":
        from repro.core.service import OnlineService

        service = OnlineService(engine, overlap=overlap)
        for lo in range(0, len(queries), 10):
            service.submit(queries[lo : lo + 10])
        return service

    def test_sequential_wallclock_matches_batch_totals(
        self, engine, small_queries
    ):
        service = self.serve(engine, small_queries, "sequential")
        total = sum(
            r.total_s for r in (s.derive_batch_timing() for s in service.schedules)
        )
        assert service.wallclock_seconds() == pytest.approx(total, rel=1e-9)

    def test_double_buffer_is_strictly_faster(self, engine, small_queries):
        """Same served schedules, composed both ways: double buffering
        must win whenever there is transfer-in time to hide."""
        service = self.serve(engine, small_queries, "sequential")
        scheds = service.schedules
        assert len(scheds) > 1
        assert scheds[0].stage_seconds(STAGE_TRANSFER_IN) > 0
        assert pipeline_wallclock(scheds, "double_buffer") < pipeline_wallclock(
            scheds, "sequential"
        )

    def test_double_buffer_service_beats_batch_total_sum(
        self, engine, small_queries
    ):
        service = self.serve(engine, small_queries, "double_buffer")
        total = sum(s.derive_batch_timing().total_s for s in service.schedules)
        assert service.wallclock_seconds() < total

    def test_summary_reports_wallclock(self, engine, small_queries):
        service = self.serve(engine, small_queries, "sequential")
        summary = service.summary()
        assert summary["wallclock_s"] == pytest.approx(
            service.wallclock_seconds()
        )

    def test_unknown_overlap_rejected(self, engine):
        from repro.core.service import OnlineService

        with pytest.raises(ConfigError):
            OnlineService(engine, overlap="nope")
