"""Discrete-event core: queuing, determinism, kills, stream execution.

The event engine must (a) degenerate to the analytic replay on a
contention-free DAG, (b) make cross-batch contention *emerge* from FIFO
lane queuing rather than composition rules, and (c) interrupt work
mid-flight on a fault while conserving cycles on the truncated span.
"""

from __future__ import annotations

import pytest

from dataclasses import replace

from repro.errors import ConfigError
from repro.hardware.counters import StageCycles
from repro.sanitize import sanitize_schedule
from repro.sim import (
    HOST_AGG,
    HOST_CPU,
    PIM_BUS,
    SIM_ENGINE_ENV,
    STAGE_AGGREGATE,
    STAGE_CLUSTER_FILTER,
    STAGE_RETRY,
    STAGE_TRANSFER_IN,
    STAGE_TRANSFER_OUT,
    BatchWork,
    EventEngine,
    WorkItem,
    compose,
    execute_stream,
    resolve_sim_engine,
)

FREQ = 350e6


def make_batch_work(
    *,
    filter_s: float = 1.0,
    tin_s: float = 2.0,
    dpu_cycles: float = 3.5e8,  # 1 s at 350 MHz
    tout_s: float = 0.5,
    agg_s: float = 0.25,
) -> BatchWork:
    """A synthetic batch description shaped like the engines emit."""
    work = BatchWork(dpu_frequency_hz=FREQ)
    host = work.work(HOST_CPU, STAGE_CLUSTER_FILTER, filter_s)
    tin = work.work(PIM_BUS, STAGE_TRANSFER_IN, tin_s, after=(host,))
    tail = work.work_dpu_stages(
        0, StageCycles(distance_calc=dpu_cycles), after=(tin,)
    )
    tout = work.work(PIM_BUS, STAGE_TRANSFER_OUT, tout_s, after=(tail,))
    work.work(HOST_CPU, STAGE_AGGREGATE, agg_s, after=(tout,))
    return work


class TestResolveSimEngine:
    def test_defaults_to_analytic(self, monkeypatch):
        monkeypatch.delenv(SIM_ENGINE_ENV, raising=False)
        assert resolve_sim_engine() == "analytic"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(SIM_ENGINE_ENV, "event")
        assert resolve_sim_engine() == "event"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(SIM_ENGINE_ENV, "event")
        assert resolve_sim_engine("analytic") == "analytic"

    def test_unknown_rejected(self, monkeypatch):
        monkeypatch.delenv(SIM_ENGINE_ENV, raising=False)
        with pytest.raises(ConfigError):
            resolve_sim_engine("quantum")
        monkeypatch.setenv(SIM_ENGINE_ENV, "quantum")
        with pytest.raises(ConfigError):
            resolve_sim_engine()


class TestBatchWork:
    def test_forward_dependency_rejected(self):
        work = BatchWork()
        with pytest.raises(ConfigError):
            work.work(HOST_CPU, STAGE_CLUSTER_FILTER, 1.0, after=(3,))

    def test_none_deps_filtered(self):
        work = BatchWork()
        uid = work.work(HOST_CPU, STAGE_CLUSTER_FILTER, 1.0, after=(None,))
        assert work.items[uid].deps == ()

    def test_unknown_mode_rejected(self):
        work = make_batch_work()
        with pytest.raises(ConfigError):
            work.execute("quantum")

    def test_dpu_stages_require_frequency(self):
        work = BatchWork()
        with pytest.raises(ConfigError):
            work.work_dpu_stages(0, StageCycles(distance_calc=1.0))


class TestDegenerateParity:
    """A contention-free DAG executes identically under both cores."""

    def test_event_matches_analytic_bitwise(self):
        analytic = make_batch_work().execute("analytic")
        event = make_batch_work().execute("event")
        assert list(analytic.timelines) == list(event.timelines)
        for name, tl in analytic.timelines.items():
            got = event.timelines[name].spans
            assert len(tl.spans) == len(got)
            for a, b in zip(tl.spans, got):
                assert a.t0.hex() == b.t0.hex()
                assert a.t1.hex() == b.t1.hex()
                assert (a.stage, a.cycles) == (b.stage, b.cycles)

    def test_timing_scalars_match(self):
        a = make_batch_work().execute("analytic").derive_batch_timing()
        e = make_batch_work().execute("event").derive_batch_timing()
        assert a.total_s == e.total_s
        assert a.dpu_makespan_s == e.dpu_makespan_s


class TestFifoQueuing:
    def test_second_arrival_queues_behind_busy_lane(self):
        work = BatchWork()
        work.work(PIM_BUS, STAGE_TRANSFER_IN, 2.0)
        work.work(PIM_BUS, STAGE_TRANSFER_IN, 1.0)
        engine = EventEngine()
        schedule = engine.run(work.items)
        spans = schedule.timeline(PIM_BUS).spans
        assert spans[0].t0 == 0.0 and spans[0].t1 == 2.0
        assert spans[1].t0 == 2.0 and spans[1].t1 == 3.0
        stats = engine.lane_stats[PIM_BUS]
        assert stats.dispatched == 2
        assert stats.queued == 1
        assert stats.peak_outstanding == 2

    def test_simultaneous_arrivals_start_in_uid_order(self):
        work = BatchWork()
        for dur in (1.0, 2.0, 3.0):
            work.work(PIM_BUS, STAGE_TRANSFER_IN, dur)
        spans = EventEngine().run(work.items).timeline(PIM_BUS).spans
        assert [s.t1 - s.t0 for s in spans] == [1.0, 2.0, 3.0]

    def test_pinned_successor_preempts_queue(self):
        """Retry traffic stays contiguous with the transfer it repairs
        even when another batch's transfer is already queued."""
        work = BatchWork()
        tin_a = work.work(PIM_BUS, STAGE_TRANSFER_IN, 1.0)
        work.work(PIM_BUS, STAGE_TRANSFER_IN, 1.0)  # rival, queued at t=0
        work.work(PIM_BUS, STAGE_RETRY, 0.5, after=(tin_a,), pinned=True)
        spans = EventEngine().run(work.items).timeline(PIM_BUS).spans
        assert [s.stage for s in spans] == [
            STAGE_TRANSFER_IN,
            STAGE_RETRY,
            STAGE_TRANSFER_IN,
        ]
        assert spans[1].t0 == spans[0].t1

    def test_duplicate_uid_rejected(self):
        items = [
            WorkItem(uid=0, resource=PIM_BUS, stage=STAGE_TRANSFER_IN, duration=1.0),
            WorkItem(uid=0, resource=PIM_BUS, stage=STAGE_TRANSFER_IN, duration=1.0),
        ]
        with pytest.raises(ConfigError):
            EventEngine().run(items)

    def test_dependency_cycle_is_deadlock_not_hang(self):
        items = [
            WorkItem(
                uid=0, resource=PIM_BUS, stage=STAGE_TRANSFER_IN,
                duration=1.0, deps=(1,),
            ),
            WorkItem(
                uid=1, resource=HOST_CPU, stage=STAGE_AGGREGATE,
                duration=1.0, deps=(0,),
            ),
        ]
        with pytest.raises(ConfigError, match="deadlock"):
            EventEngine().run(items)


class TestMidFlightKill:
    def test_inflight_compute_truncates_with_cycle_conservation(self):
        work = BatchWork(dpu_frequency_hz=FREQ)
        tail = work.work_dpu_stages(0, StageCycles(distance_calc=3.5e8))
        work.work(PIM_BUS, STAGE_TRANSFER_OUT, 0.5, after=(tail,))
        engine = EventEngine(dpu_frequency_hz=FREQ)
        schedule = engine.run(work.items, kills_at=[("dpu/0", 0.4)])
        # The lane carries the zero-cycle stage chain plus the truncated
        # distance_calc; stages after the fence never record.
        spans = schedule.timeline("dpu/0").spans
        cut = spans[-1]
        assert cut.stage == "distance_calc"
        # Whole cycles retired before the fence, duration exact.
        assert cut.cycles == float(int(0.4 * FREQ))
        assert cut.t1 - cut.t0 == cut.cycles / FREQ
        assert cut.t1 <= 0.4 + 1e-12
        # The dependent gather proceeds at the fence, not at the
        # original 1 s completion — graceful degradation, no deadlock.
        tout = schedule.timeline(PIM_BUS).spans[0]
        assert tout.t0 == 0.4
        assert engine.lane_stats["dpu/0"].cancelled >= 1
        assert sanitize_schedule(schedule) == []

    def test_kill_before_start_cancels_without_span(self):
        work = BatchWork()
        first = work.work(PIM_BUS, STAGE_TRANSFER_IN, 1.0)
        blocked = work.work("dpu/0", "distance_calc", 1.0, after=(first,))
        work.work(HOST_CPU, STAGE_AGGREGATE, 0.25, after=(blocked,))
        engine = EventEngine()
        schedule = engine.run(work.items, kills_at=[("dpu/0", 0.0)])
        assert schedule.timeline("dpu/0").spans == []
        # The aggregate still runs, released when its dead dependency
        # settles (at the transfer's end, which gated the dpu item).
        agg = schedule.timeline(HOST_CPU).spans[0]
        assert agg.t0 == 1.0
        assert engine.lane_stats["dpu/0"].cancelled == 1

    def test_kill_is_idempotent_and_fences_later_arrivals(self):
        work = BatchWork()
        work.work("dpu/0", "distance_calc", 1.0)
        later = work.work(PIM_BUS, STAGE_TRANSFER_IN, 2.0)
        work.work("dpu/0", "distance_calc", 1.0, after=(later,))
        engine = EventEngine()
        schedule = engine.run(
            work.items, kills_at=[("dpu/0", 0.5), ("dpu/0", 0.7)]
        )
        spans = schedule.timeline("dpu/0").spans
        assert len(spans) == 1 and spans[0].t1 == 0.5
        assert engine.lane_stats["dpu/0"].cancelled == 2


class TestExecuteStream:
    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            execute_stream([])

    def test_unknown_overlap_rejected(self):
        with pytest.raises(ConfigError):
            execute_stream([make_batch_work()], overlap="triple_buffer")

    def test_sequential_matches_composed_makespan(self):
        works = [make_batch_work() for _ in range(3)]
        composed = compose(
            [make_batch_work().execute("analytic") for _ in range(3)],
            "sequential",
        )
        stream = execute_stream(works, overlap="sequential")
        assert stream.makespan == pytest.approx(composed.makespan, rel=1e-12)
        assert sanitize_schedule(stream) == []

    def test_double_buffer_overlaps_and_queues_on_the_bus(self):
        works = [make_batch_work() for _ in range(3)]
        seq = execute_stream(
            [make_batch_work() for _ in range(3)], overlap="sequential"
        )
        stream = execute_stream(works, overlap="double_buffer")
        assert stream.makespan < seq.makespan
        # Inbound transfers are serialized by genuine bus occupancy:
        # batch N+1's transfer-in starts no earlier than batch N's ends.
        tins = [
            s
            for s in stream.timeline(PIM_BUS).spans
            if s.stage == STAGE_TRANSFER_IN
        ]
        assert len(tins) == 3
        for prev, cur in zip(tins, tins[1:]):
            assert cur.t0 >= prev.t1
        # Aggregation moved to its own lane, like compose_double_buffer.
        assert len(stream.timeline(HOST_AGG).spans) == 3
        assert sanitize_schedule(stream) == []

    def test_stream_kill_interrupts_previous_batch_mid_flight(self):
        """A DPU death at batch 1's first bus activity truncates batch
        0's compute still in flight on the victim lane."""
        # 2 s of compute: batch 1's transfer-in (released by batch 0's
        # transfer-in, one host-prep later) starts while it still runs.
        works = [
            make_batch_work(dpu_cycles=7e8),
            make_batch_work(dpu_cycles=7e8),
        ]
        stream = execute_stream(
            works, overlap="double_buffer", kills={"dpu/0": 1}
        )
        dc = [
            s
            for s in stream.timeline("dpu/0").spans
            if s.stage == "distance_calc"
        ]
        # Batch 0's 2 s compute was cut short; batch 1's never ran.
        assert len(dc) == 1
        assert 0.0 < dc[0].t1 - dc[0].t0 < 2.0
        assert dc[0].cycles == pytest.approx((dc[0].t1 - dc[0].t0) * FREQ)
        assert sanitize_schedule(stream) == []

    def test_sequential_stream_barriers_single_item_batches(self):
        w0, w1 = BatchWork(), BatchWork()
        w0.work(PIM_BUS, STAGE_TRANSFER_IN, 1.0)
        w1.work(PIM_BUS, STAGE_TRANSFER_IN, 1.0)
        stream = execute_stream([w0, w1], overlap="sequential")
        spans = stream.timeline(PIM_BUS).spans
        assert [s.t0 for s in spans] == [0.0, 1.0]


class TestArrivalRelease:
    """Arrival-time work release: WorkItem.earliest + stream releases."""

    def test_item_earliest_honored_by_both_cores(self):
        work = make_batch_work()
        work.items[0] = replace(work.items[0], earliest=5.0)
        for mode in ("analytic", "event"):
            schedule = work.execute(mode)
            head = schedule.timeline(HOST_CPU).spans[0]
            assert head.t0 == pytest.approx(5.0), mode
            assert sanitize_schedule(schedule) == []

    def test_default_earliest_is_bit_compatible(self):
        plain = make_batch_work().execute("event")
        explicit = make_batch_work()
        explicit.items = [replace(i, earliest=0.0) for i in explicit.items]
        assert explicit.execute("event").makespan == plain.makespan

    def test_release_delays_batch_start(self):
        """A batch submitted at time t starts no earlier than t, even
        on an idle pipeline — the gap is real queue time."""
        works = [make_batch_work(), make_batch_work()]
        base = execute_stream(
            [make_batch_work(), make_batch_work()], overlap="sequential"
        )
        gap = base.makespan + 3.0
        stream = execute_stream(
            works, overlap="sequential", releases=[0.0, gap]
        )
        batch1 = [
            s
            for tl in stream.timelines.values()
            for s in tl.spans
            if s.trace is not None and s.trace.batch == 1
        ]
        assert min(s.t0 for s in batch1) >= gap
        assert stream.makespan == pytest.approx(
            base.makespan / 2 + gap, rel=1e-12
        )
        assert sanitize_schedule(stream) == []

    def test_zero_releases_match_no_releases_bitwise(self):
        no_releases = execute_stream(
            [make_batch_work(), make_batch_work()], overlap="double_buffer"
        )
        zeros = execute_stream(
            [make_batch_work(), make_batch_work()],
            overlap="double_buffer",
            releases=[0.0, 0.0],
        )
        assert zeros.makespan == no_releases.makespan
        for name, tl in no_releases.timelines.items():
            other = zeros.timeline(name).spans
            assert [(s.t0, s.t1, s.stage) for s in tl.spans] == [
                (s.t0, s.t1, s.stage) for s in other
            ]

    def test_release_count_must_match_batches(self):
        with pytest.raises(ConfigError, match="release times"):
            execute_stream([make_batch_work()], releases=[0.0, 1.0])

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_bad_release_values_rejected(self, bad):
        with pytest.raises(ConfigError, match="finite"):
            execute_stream(
                [make_batch_work(), make_batch_work()], releases=[0.0, bad]
            )

    def test_decreasing_releases_rejected(self):
        with pytest.raises(ConfigError, match="non-decreasing"):
            execute_stream(
                [make_batch_work(), make_batch_work()], releases=[2.0, 1.0]
            )
