"""Span / ResourceTimeline / BatchSchedule invariants and trace export."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.hardware.counters import StageCycles
from repro.sim import (
    HOST_CPU,
    PIM_BUS,
    BatchSchedule,
    ResourceTimeline,
    Span,
    chrome_trace,
    dpu_resource,
    is_dpu_resource,
    record,
    validate_chrome_trace,
)


class TestSpan:
    def test_t1_is_start_plus_duration(self):
        span = Span(HOST_CPU, "schedule", 1.0, 0.25)
        assert span.t1 == 1.25

    def test_negative_duration_raises(self):
        with pytest.raises(ConfigError):
            Span(HOST_CPU, "schedule", 0.0, -1e-9)

    def test_negative_start_raises(self):
        with pytest.raises(ConfigError):
            Span(HOST_CPU, "schedule", -0.1, 1.0)

    def test_dpu_resource_names(self):
        assert dpu_resource(7) == "dpu/7"
        assert is_dpu_resource("dpu/0")
        assert not is_dpu_resource(HOST_CPU)


class TestResourceTimeline:
    def test_append_enforces_resource_match(self):
        tl = ResourceTimeline(HOST_CPU)
        with pytest.raises(ConfigError):
            tl.append(Span(PIM_BUS, "transfer_in", 0.0, 1.0))

    def test_append_enforces_non_overlap(self):
        tl = ResourceTimeline(HOST_CPU)
        tl.append(Span(HOST_CPU, "a", 0.0, 1.0))
        with pytest.raises(ConfigError):
            tl.append(Span(HOST_CPU, "b", 0.5, 1.0))

    def test_end_and_busy_seconds(self):
        tl = ResourceTimeline(HOST_CPU)
        assert tl.end == 0.0
        tl.append(Span(HOST_CPU, "a", 0.0, 1.0))
        tl.append(Span(HOST_CPU, "b", 2.0, 0.5))
        assert tl.end == 2.5
        assert tl.busy_seconds() == 1.5  # gaps don't count

    def test_stage_seconds_filters(self):
        tl = ResourceTimeline(HOST_CPU)
        tl.append(Span(HOST_CPU, "a", 0.0, 1.0))
        tl.append(Span(HOST_CPU, "b", 1.0, 0.5))
        tl.append(Span(HOST_CPU, "a", 1.5, 0.25))
        assert tl.stage_seconds("a") == 1.25


class TestBatchSchedule:
    def test_record_appends_back_to_back(self):
        sched = BatchSchedule()
        sched.record(HOST_CPU, "a", 1.0)
        span = sched.record(HOST_CPU, "b", 0.5)
        assert span.t0 == 1.0
        assert sched.makespan == 1.5

    def test_record_at_clamps_to_lane_end(self):
        sched = BatchSchedule()
        sched.record(HOST_CPU, "a", 1.0)
        span = sched.record_at(HOST_CPU, "b", 0.25, 0.5)
        assert span.t0 == 1.0  # requested 0.25, lane busy until 1.0

    def test_makespan_spans_resources(self):
        sched = BatchSchedule()
        sched.record(HOST_CPU, "a", 1.0)
        sched.record_at(PIM_BUS, "transfer_in", 1.0, 2.0)
        assert sched.makespan == 3.0
        assert sched.makespan == max(tl.end for tl in sched.timelines.values())

    def test_module_level_record_helper(self):
        sched = BatchSchedule()
        span = record(sched, HOST_CPU, "a", 0.5)
        assert sched.timeline(HOST_CPU).spans == [span]

    def test_dpu_stages_require_frequency(self):
        sched = BatchSchedule()
        with pytest.raises(ConfigError):
            sched.record_dpu_stages(0, StageCycles(distance_calc=100.0))

    def test_dpu_stage_spans_carry_cycles(self):
        sched = BatchSchedule(dpu_frequency_hz=350e6)
        stage = StageCycles(lut_construction=70.0, distance_calc=350.0)
        sched.record_dpu_stages(0, stage)
        lane = sched.timeline(dpu_resource(0))
        assert lane.busy_cycles() == stage.total
        timing = sched.derive_batch_timing()
        assert timing.dpu_makespan_s == stage.total / 350e6

    def test_worst_dpu_matches_first_strict_max(self):
        sched = BatchSchedule(dpu_frequency_hz=350e6)
        sched.record_dpu_stages(0, StageCycles(distance_calc=100.0))
        sched.record_dpu_stages(1, StageCycles(distance_calc=300.0))
        sched.record_dpu_stages(2, StageCycles(distance_calc=300.0))
        worst = sched.worst_dpu_stage_cycles()
        assert worst.distance_calc == 300.0

    def test_empty_schedule_derives_zero_timing(self):
        timing = BatchSchedule().derive_batch_timing()
        assert timing.total_s == 0.0


class TestChromeTrace:
    def make_schedule(self) -> BatchSchedule:
        sched = BatchSchedule(dpu_frequency_hz=350e6)
        sched.record(HOST_CPU, "cluster_filter", 1e-4)
        sched.record(HOST_CPU, "schedule", 2e-5)
        sched.record_at(PIM_BUS, "transfer_in", sched.timeline(HOST_CPU).end, 5e-5)
        sched.record_dpu_stages(
            0,
            StageCycles(lut_construction=100.0, distance_calc=900.0),
            start_s=sched.timeline(PIM_BUS).end,
        )
        return sched

    def test_trace_is_valid(self):
        payload = chrome_trace(self.make_schedule())
        assert validate_chrome_trace(payload) == []

    def test_x_events_cover_every_span(self):
        sched = self.make_schedule()
        payload = sched.to_chrome_trace()
        n_spans = sum(len(tl.spans) for tl in sched.timelines.values())
        x_events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(x_events) == n_spans

    def test_thread_metadata_per_resource(self):
        sched = self.make_schedule()
        payload = sched.to_chrome_trace()
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == set(sched.resources())

    def test_validator_catches_overlap(self):
        payload = {
            "traceEvents": [
                {"ph": "X", "name": "a", "pid": 0, "tid": 0, "ts": 0.0, "dur": 10.0},
                {"ph": "X", "name": "b", "pid": 0, "tid": 0, "ts": 5.0, "dur": 10.0},
            ]
        }
        errors = validate_chrome_trace(payload)
        assert errors and "overlap" in errors[0]

    def test_validator_catches_negative_duration(self):
        payload = {
            "traceEvents": [
                {"ph": "X", "name": "a", "pid": 0, "tid": 0, "ts": 0.0, "dur": -1.0}
            ]
        }
        assert validate_chrome_trace(payload) != []

    def test_validator_rejects_non_dict(self):
        assert validate_chrome_trace([]) != []
