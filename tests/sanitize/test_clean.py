"""Property-style guarantee: everything the simulator actually produces
sanitizes clean.

The adversarial suite proves the sanitizer *can* fire; this one proves
it *doesn't* fire on real output — engine batches (fault-free and under
a transfer-fault hazard), both composition modes, the multi-host
decomposition, and exported Chrome traces — with the derived ledgers
(``BatchTiming``, ``StageCycles``, ``DegradedResult``) cross-checked
against the spans bit-for-bit.
"""

from __future__ import annotations

import pytest

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import UpANNSEngine
from repro.core.multihost import MultiHostEngine
from repro.core.service import OnlineService
from repro.faults import FaultPlan
from repro.hardware.specs import PimSystemSpec
from repro.sanitize import sanitize_chrome_trace, sanitize_schedule
from repro.sim import compose


def system_config() -> SystemConfig:
    return SystemConfig(
        index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=6),
        query=QueryConfig(nprobe=8, k=5, batch_size=40),
        upanns=UpANNSConfig(),
        pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
        timing_scale=1.0,
    )


def build_engine(small_dataset, history_queries, trained_index) -> UpANNSEngine:
    engine = UpANNSEngine(system_config())
    engine.build(
        small_dataset.vectors,
        history_queries=history_queries,
        prebuilt_index=trained_index,
    )
    return engine


def assert_result_sanitizes_clean(result) -> None:
    findings = sanitize_schedule(
        result.schedule,
        timing=result.timing,
        stage_seconds=result.stage_seconds,
        degraded=result.degraded,
    )
    assert findings == [], "\n".join(f.render() for f in findings)


class TestEngineOutputIsClean:
    @pytest.fixture(scope="class")
    def engine(self, small_dataset, history_queries, trained_index):
        return build_engine(small_dataset, history_queries, trained_index)

    def test_fault_free_batch(self, engine, small_queries):
        assert_result_sanitizes_clean(engine.search_batch(small_queries))

    def test_trace_round_trip(self, engine, small_queries):
        result = engine.search_batch(small_queries)
        findings = sanitize_chrome_trace(result.schedule.to_chrome_trace())
        assert findings == [], "\n".join(f.render() for f in findings)


class TestFaultedOutputIsClean:
    @pytest.fixture(scope="class")
    def service(self, small_dataset, history_queries, trained_index):
        engine = build_engine(small_dataset, history_queries, trained_index)
        engine.inject(FaultPlan.from_specs([], seed=5, transfer_hazard=0.35))
        return OnlineService(engine)

    def test_every_faulted_batch_is_clean(self, service, small_queries):
        saw_retry = False
        for _ in range(4):
            report = service.submit(small_queries)
            result = report.result
            if result.degraded is not None and result.degraded.retries:
                saw_retry = True
            assert_result_sanitizes_clean(result)
        assert saw_retry, "hazard 0.35 over 4 batches should retry at least once"

    @pytest.mark.parametrize("overlap", ["sequential", "double_buffer"])
    def test_faulted_compositions_are_clean(self, service, small_queries, overlap):
        while len(service.schedules) < 3:
            service.submit(small_queries)
        combined = compose(service.schedules, overlap)
        findings = sanitize_schedule(combined)
        assert findings == [], "\n".join(f.render() for f in findings)
        trace_findings = sanitize_chrome_trace(combined.to_chrome_trace())
        assert trace_findings == [], "\n".join(
            f.render() for f in trace_findings
        )


class TestMultiHostOutputIsClean:
    def test_coordinator_schedule_is_clean(
        self, small_dataset, history_queries, trained_index, small_queries
    ):
        engine = MultiHostEngine(
            host_configs=[system_config(), system_config()]
        )
        engine.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=trained_index,
        )
        result = engine.search_batch(small_queries)
        findings = sanitize_schedule(result.schedule)
        assert findings == [], "\n".join(f.render() for f in findings)
