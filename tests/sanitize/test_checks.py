"""Adversarial schedules: one fixture per defect class, distinct codes.

Every fixture here is a schedule the simulator could *never* produce
through the ``BatchSchedule.record*`` API — they are built by stuffing
``Span`` objects straight into timelines, exactly the bypass SCHED001
forbids in library code — and each must be caught by the sanitizer with
the finding code of its class, not just "something failed".
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.sanitize import (
    SAN_LEDGER,
    SAN_NUMERIC,
    SAN_ORDER,
    SAN_OVERLAP,
    SAN_SCHEMA,
    check_lanes,
    collect_trace_lanes,
    sanitize_chrome_trace,
    sanitize_schedule,
    schedule_lanes,
)
from repro.sanitize.hook import debug_sanitize_schedule
from repro.sim import (
    HOST_CPU,
    PIM_BUS,
    BatchSchedule,
    ResourceTimeline,
    Span,
    dpu_resource,
)
from repro.sim.schedule import (
    STAGE_AGGREGATE,
    STAGE_CLUSTER_FILTER,
    STAGE_RETRY,
    STAGE_TRANSFER_IN,
    STAGE_TRANSFER_OUT,
)


def raw_schedule(*lanes: tuple[str, list[Span]], freq=None) -> BatchSchedule:
    """Build a schedule by direct timeline injection (bypasses append)."""
    sched = BatchSchedule(dpu_frequency_hz=freq)
    for resource, spans in lanes:
        sched.timelines[resource] = ResourceTimeline(resource, spans=list(spans))
    return sched


def codes(findings) -> set[str]:
    return {f.code for f in findings}


def valid_schedule() -> BatchSchedule:
    """A well-formed single-batch schedule recorded through the API."""
    sched = BatchSchedule(dpu_frequency_hz=100.0)
    sched.record(HOST_CPU, STAGE_CLUSTER_FILTER, 0.5)
    sched.record(HOST_CPU, "schedule", 0.5)
    sched.record(PIM_BUS, STAGE_TRANSFER_IN, 2.0)
    sched.record(PIM_BUS, STAGE_RETRY, 0.5)
    bus_end = sched.timeline(PIM_BUS).end
    sched.record_at(dpu_resource(0), "scan", bus_end, 1.0, cycles=100.0)
    sched.record_at(dpu_resource(1), "scan", bus_end, 2.0, cycles=200.0)
    dpu_done = max(tl.end for tl in sched.dpu_timelines())
    sched.record_at(PIM_BUS, STAGE_TRANSFER_OUT, dpu_done, 1.0)
    sched.record_at(
        HOST_CPU, STAGE_AGGREGATE, sched.timeline(PIM_BUS).end, 0.5
    )
    return sched


class TestDoubleBooking:
    def test_overlap_on_exclusive_lane_is_san_overlap(self):
        sched = raw_schedule(
            (
                PIM_BUS,
                [
                    Span(PIM_BUS, STAGE_TRANSFER_IN, 0.0, 2.0),
                    Span(PIM_BUS, STAGE_TRANSFER_OUT, 1.0, 2.0),
                ],
            )
        )
        findings = sanitize_schedule(sched)
        assert codes(findings) == {SAN_OVERLAP}
        assert "overlaps" in findings[0].message

    def test_dpu_lane_double_booking(self):
        lane = dpu_resource(3)
        findings = check_lanes(
            {lane: [(0.0, 5.0, "scan"), (4.0, 1.0, "scan")]}
        )
        assert codes(findings) == {SAN_OVERLAP}

    def test_touching_spans_are_clean(self):
        findings = check_lanes(
            {HOST_CPU: [(0.0, 1.0, "a"), (1.0, 1.0, "b")]}, causality=False
        )
        assert findings == []

    def test_rtol_forgives_microsecond_rounding(self):
        end = 1.0
        barely_early = end - end * 1e-12
        findings = check_lanes(
            {HOST_CPU: [(0.0, end, "a"), (barely_early, 1.0, "b")]},
            rtol=1e-9,
            causality=False,
        )
        assert findings == []


class TestCausalityInversions:
    def test_dpu_before_transfer_in_is_san_order(self):
        sched = raw_schedule(
            (PIM_BUS, [Span(PIM_BUS, STAGE_TRANSFER_IN, 1.0, 2.0)]),
            (dpu_resource(0), [Span(dpu_resource(0), "scan", 0.5, 1.0)]),
        )
        findings = sanitize_schedule(sched)
        assert codes(findings) == {SAN_ORDER}
        assert "before the first transfer_in" in findings[0].message

    def test_aggregate_before_transfer_out(self):
        lanes = {
            PIM_BUS: [
                (0.0, 1.0, STAGE_TRANSFER_IN),
                (3.0, 2.0, STAGE_TRANSFER_OUT),
            ],
            dpu_resource(0): [(1.0, 2.0, "scan")],
            HOST_CPU: [(4.0, 1.0, STAGE_AGGREGATE)],
        }
        findings = check_lanes(lanes)
        assert codes(findings) == {SAN_ORDER}
        assert "transfer_out" in findings[0].message

    def test_aggregate_before_any_dpu_closed(self):
        lanes = {
            PIM_BUS: [(0.0, 1.0, STAGE_TRANSFER_IN)],
            dpu_resource(0): [(1.0, 5.0, "scan")],
            HOST_CPU: [(2.0, 1.0, STAGE_AGGREGATE)],
        }
        findings = check_lanes(lanes)
        assert codes(findings) == {SAN_ORDER}
        assert "DPU" in findings[0].message

    def test_retry_not_contiguous_with_transfer(self):
        lanes = {
            PIM_BUS: [
                (0.0, 1.0, STAGE_TRANSFER_IN),
                (1.0, 1.0, STAGE_TRANSFER_OUT),
                (2.0, 0.5, STAGE_RETRY),
            ]
        }
        findings = check_lanes(lanes)
        assert codes(findings) == {SAN_ORDER}
        assert "contiguous" in findings[0].message

    def test_retry_after_transfer_in_or_retry_is_clean(self):
        lanes = {
            PIM_BUS: [
                (0.0, 1.0, STAGE_TRANSFER_IN),
                (1.0, 0.5, STAGE_RETRY),
                (1.5, 0.5, STAGE_RETRY),
                (2.0, 1.0, STAGE_TRANSFER_OUT),
            ]
        }
        assert check_lanes(lanes) == []


class TestNumericAnomalies:
    def test_nan_duration_is_san_numeric(self):
        # NaN sails through Span.__post_init__ (nan < 0 is False) — the
        # sanitizer is the only net that catches it.
        sched = raw_schedule(
            (HOST_CPU, [Span(HOST_CPU, "a", 0.0, math.nan)])
        )
        findings = sanitize_schedule(sched)
        assert codes(findings) == {SAN_NUMERIC}
        assert "NaN" in findings[0].message

    def test_nan_start_is_san_numeric(self):
        findings = check_lanes({HOST_CPU: [(math.nan, 1.0, "a")]})
        assert codes(findings) == {SAN_NUMERIC}

    def test_infinite_duration_is_san_numeric(self):
        findings = check_lanes({HOST_CPU: [(0.0, math.inf, "a")]})
        assert codes(findings) == {SAN_NUMERIC}

    def test_zero_duration_legal_by_default_flagged_in_strict(self):
        lanes = {HOST_CPU: [(0.0, 0.0, "gather")]}
        assert check_lanes(lanes) == []
        strict = check_lanes(lanes, strict_zero=True)
        assert codes(strict) == {SAN_NUMERIC}
        assert "strict" in strict[0].message


class TestLedgerConservation:
    def test_clean_schedule_with_true_ledgers(self):
        sched = valid_schedule()
        assert sanitize_schedule(sched, timing=sched.derive_batch_timing()) == []

    def test_tampered_timing_field_is_san_ledger(self):
        sched = valid_schedule()
        timing = sched.derive_batch_timing()
        timing.transfer_in_s += 0.25
        findings = sanitize_schedule(sched, timing=timing)
        assert codes(findings) == {SAN_LEDGER}
        assert any("transfer_in_s" in f.location for f in findings)

    def test_tampered_retry_charge_is_san_ledger(self):
        sched = valid_schedule()
        timing = sched.derive_batch_timing()
        timing.retry_s = 0.0
        findings = sanitize_schedule(sched, timing=timing)
        assert codes(findings) == {SAN_LEDGER}

    def test_dpu_duration_cycles_disagreement(self):
        lane = dpu_resource(0)
        sched = raw_schedule(
            (lane, [Span(lane, "scan", 0.0, 1.5, cycles=100.0)]),
            freq=100.0,
        )
        findings = sanitize_schedule(sched)
        assert codes(findings) == {SAN_LEDGER}
        assert "cycles" in findings[0].message

    def test_fault_ledger_mismatches(self):
        class FakeDegraded:
            retries = 3
            retry_s = 99.0

        sched = valid_schedule()
        findings = sanitize_schedule(
            sched, timing=sched.derive_batch_timing(), degraded=FakeDegraded()
        )
        assert codes(findings) == {SAN_LEDGER}
        locations = {f.location for f in findings}
        assert "degraded.retry_s" in locations
        assert "degraded.retries" in locations  # 1 retry span, not 3


class TestSchemaFindings:
    def test_span_filed_under_wrong_lane(self):
        sched = raw_schedule(
            (HOST_CPU, [Span(PIM_BUS, STAGE_TRANSFER_IN, 0.0, 1.0)])
        )
        findings = sanitize_schedule(sched)
        assert SAN_SCHEMA in codes(findings)

    def test_every_defect_class_has_a_distinct_code(self):
        assert len({SAN_OVERLAP, SAN_ORDER, SAN_NUMERIC, SAN_LEDGER, SAN_SCHEMA}) == 5


class TestTraceSanitization:
    def test_exported_valid_schedule_is_clean(self):
        sched = valid_schedule()
        assert sanitize_chrome_trace(sched.to_chrome_trace()) == []

    def test_trace_lanes_keyed_by_thread_name(self):
        lanes, findings = collect_trace_lanes(valid_schedule().to_chrome_trace())
        assert findings == []
        assert PIM_BUS in lanes and HOST_CPU in lanes

    def test_tampered_trace_overlap_detected_by_resource(self):
        payload = valid_schedule().to_chrome_trace()
        for event in payload["traceEvents"]:
            if event["ph"] == "X" and event["name"] == STAGE_TRANSFER_OUT:
                event["ts"] -= 2.2e6  # drag transfer_out onto the retry span
        findings = sanitize_chrome_trace(payload)
        assert SAN_OVERLAP in codes(findings)
        assert any(f.location == PIM_BUS for f in findings)

    def test_malformed_events_are_san_schema(self):
        payload = {"traceEvents": [42, {"ph": "Z", "name": "x"}]}
        findings = sanitize_chrome_trace(payload)
        assert codes(findings) == {SAN_SCHEMA}
        assert len(findings) == 2

    def test_non_dict_payload(self):
        assert codes(sanitize_chrome_trace([])) == {SAN_SCHEMA}


class TestDebugHook:
    def test_disarmed_hook_ignores_corrupt_schedule(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        sched = raw_schedule(
            (HOST_CPU, [Span(HOST_CPU, "a", 0.0, math.nan)])
        )
        debug_sanitize_schedule(sched)  # no-op

    def test_armed_hook_raises_with_label_and_code(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sched = raw_schedule(
            (HOST_CPU, [Span(HOST_CPU, "a", 0.0, math.nan)])
        )
        with pytest.raises(ConfigError, match="simsan: bad batch.*SAN-NUMERIC"):
            debug_sanitize_schedule(sched, label="bad batch")

    def test_armed_hook_passes_valid_schedule(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        debug_sanitize_schedule(valid_schedule())

    def test_zero_disarms(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        sched = raw_schedule(
            (HOST_CPU, [Span(HOST_CPU, "a", 0.0, math.nan)])
        )
        debug_sanitize_schedule(sched)


class TestScheduleLanes:
    def test_lane_map_mirrors_timelines(self):
        sched = valid_schedule()
        lanes = schedule_lanes(sched)
        assert set(lanes) == set(sched.resources())
        assert lanes[PIM_BUS][0] == (0.0, 2.0, STAGE_TRANSFER_IN)


class TestTracePartition:
    """SAN-TRACE: trace ids must partition a traced schedule's spans."""

    def traced_span(self, resource, stage, t0, dur, *, uid, batch=0, ids=(),
                    wait=0.0):
        from repro.sim.span import SpanTrace

        return Span(
            resource, stage, t0, dur,
            trace=SpanTrace(uid=uid, trace_ids=tuple(ids), batch=batch,
                            wait_s=wait),
        )

    def test_untraced_schedule_is_legal(self):
        from repro.sanitize import check_trace_partition

        assert check_trace_partition(valid_schedule()) == []

    def test_fully_traced_schedule_is_clean(self):
        from repro.sanitize import check_trace_partition

        sched = raw_schedule(
            (HOST_CPU, [
                self.traced_span(HOST_CPU, "filter", 0.0, 1.0, uid=0,
                                 ids=("q000000",)),
            ]),
            (PIM_BUS, [
                self.traced_span(PIM_BUS, STAGE_TRANSFER_IN, 1.0, 1.0, uid=1,
                                 ids=("q000000",), wait=0.5),
            ]),
        )
        assert check_trace_partition(sched) == []

    def test_half_traced_schedule_flagged(self):
        from repro.sanitize import SAN_TRACE, check_trace_partition

        sched = raw_schedule(
            (HOST_CPU, [
                self.traced_span(HOST_CPU, "filter", 0.0, 1.0, uid=0,
                                 ids=("q000000",)),
                Span(HOST_CPU, "aggregate", 1.0, 1.0),  # dropped context
            ]),
        )
        findings = check_trace_partition(sched)
        assert codes(findings) == {SAN_TRACE}
        assert any("partition the span set" in f.message for f in findings)

    def test_duplicate_span_identity_flagged(self):
        from repro.sanitize import SAN_TRACE, check_trace_partition

        sched = raw_schedule(
            (HOST_CPU, [
                self.traced_span(HOST_CPU, "a", 0.0, 1.0, uid=3),
                self.traced_span(HOST_CPU, "b", 1.0, 1.0, uid=3),
            ]),
        )
        findings = check_trace_partition(sched)
        assert SAN_TRACE in codes(findings)
        assert any("duplicates" in f.message for f in findings)

    def test_trace_id_crossing_batches_flagged(self):
        from repro.sanitize import SAN_TRACE, check_trace_partition

        sched = raw_schedule(
            (HOST_CPU, [
                self.traced_span(HOST_CPU, "a", 0.0, 1.0, uid=0, batch=0,
                                 ids=("q000000",)),
                self.traced_span(HOST_CPU, "a", 1.0, 1.0, uid=0, batch=1,
                                 ids=("q000000",)),
            ]),
        )
        findings = check_trace_partition(sched)
        assert SAN_TRACE in codes(findings)
        assert any("exactly one" in f.message for f in findings)

    def test_negative_and_nan_wait_flagged(self):
        from repro.sanitize import SAN_TRACE, check_trace_partition

        sched = raw_schedule(
            (HOST_CPU, [
                self.traced_span(HOST_CPU, "a", 0.0, 1.0, uid=0, wait=-0.5),
                self.traced_span(HOST_CPU, "b", 1.0, 1.0, uid=1,
                                 wait=math.nan),
            ]),
        )
        findings = check_trace_partition(sched)
        assert codes(findings) == {SAN_TRACE}
        assert len(findings) == 2

    def test_sanitize_schedule_runs_the_partition_check(self):
        from repro.sanitize import SAN_TRACE

        sched = raw_schedule(
            (HOST_CPU, [
                self.traced_span(HOST_CPU, "filter", 0.0, 1.0, uid=0,
                                 ids=("q000000",)),
                Span(HOST_CPU, "aggregate", 1.0, 1.0),
            ]),
        )
        assert SAN_TRACE in codes(sanitize_schedule(sched))


class TestFlowEvents:
    """Chrome-trace flow events ("s"/"t"/"f") bind per-query chains."""

    def test_flow_phases_tolerated(self):
        payload = valid_schedule().to_chrome_trace()
        payload["traceEvents"].extend([
            {"ph": "s", "id": "q000000", "ts": 0.0, "pid": 1, "tid": 1,
             "name": "query", "cat": "query"},
            {"ph": "t", "id": "q000000", "ts": 1.0, "pid": 1, "tid": 1,
             "name": "query", "cat": "query"},
            {"ph": "f", "id": "q000000", "ts": 2.0, "pid": 1, "tid": 1,
             "name": "query", "cat": "query", "bp": "e"},
        ])
        assert sanitize_chrome_trace(payload) == []

    def test_flow_event_without_id_is_san_schema(self):
        payload = valid_schedule().to_chrome_trace()
        payload["traceEvents"].append(
            {"ph": "s", "ts": 0.0, "name": "query", "cat": "query"}
        )
        assert SAN_SCHEMA in codes(sanitize_chrome_trace(payload))

    def test_flow_event_with_negative_ts_is_san_schema(self):
        payload = valid_schedule().to_chrome_trace()
        payload["traceEvents"].append(
            {"ph": "f", "id": "q000000", "ts": -1.0, "name": "query",
             "cat": "query"}
        )
        assert SAN_SCHEMA in codes(sanitize_chrome_trace(payload))
