"""CLI contracts: ``repro sanitize``, ``repro trace --sanitize`` and the
``python -m repro.sim.trace`` validator's exit codes."""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
from pathlib import Path

from repro.cli import main
from repro.telemetry.schema import validate_sanitize_record

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_TIMINGS = REPO_ROOT / "tests" / "sim" / "golden_timings.json"
GOLDEN_CHAOS = REPO_ROOT / "tests" / "integration" / "golden_chaos.json"


def overlapping_trace() -> dict:
    return {
        "traceEvents": [
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": 0,
                "args": {"name": "pim_bus"},
            },
            {"ph": "X", "name": "transfer_in", "pid": 0, "tid": 0,
             "ts": 0.0, "dur": 10.0},
            {"ph": "X", "name": "transfer_out", "pid": 0, "tid": 0,
             "ts": 5.0, "dur": 10.0},
        ]
    }


class TestSanitizeSubcommand:
    def test_golden_fixtures_are_clean(self, capsys):
        assert main(["sanitize", str(GOLDEN_TIMINGS), str(GOLDEN_CHAOS)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "(golden)" in out and "(chaos)" in out

    def test_findings_exit_one_with_code(self, tmp_path, capsys):
        bad = tmp_path / "bad_trace.json"
        bad.write_text(json.dumps(overlapping_trace()))
        assert main(["sanitize", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "SAN-OVERLAP" in out
        assert "bad_trace.json" in out

    def test_unreadable_input_exits_two(self, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        assert main(["sanitize", str(broken)]) == 2
        assert main(["sanitize", str(tmp_path / "missing.json")]) == 2

    def test_json_output_is_valid_sanitize_record(self, tmp_path, capsys):
        bad = tmp_path / "bad_trace.json"
        bad.write_text(json.dumps(overlapping_trace()))
        assert main(["sanitize", "--json", str(bad)]) == 1
        record = json.loads(capsys.readouterr().out)
        assert validate_sanitize_record(record) == []
        assert record["count"] == 1
        assert record["inputs"][0]["kind"] == "trace"
        assert record["findings"][0]["code"] == "SAN-OVERLAP"

    def test_out_writes_record_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        assert (
            main(["sanitize", "--out", str(out_file), str(GOLDEN_CHAOS)]) == 0
        )
        capsys.readouterr()
        record = json.loads(out_file.read_text())
        assert validate_sanitize_record(record) == []
        assert record["count"] == 0

    def test_strict_flags_zero_duration_spans(self, tmp_path, capsys):
        trace = {
            "traceEvents": [
                {"ph": "X", "name": "gather", "pid": 0, "tid": 0,
                 "ts": 0.0, "dur": 0.0}
            ]
        }
        path = tmp_path / "zero.json"
        path.write_text(json.dumps(trace))
        assert main(["sanitize", str(path)]) == 0
        capsys.readouterr()
        assert main(["sanitize", "--strict", str(path)]) == 1
        assert "SAN-NUMERIC" in capsys.readouterr().out


class TestTraceSanitizeFlag:
    def test_trace_export_passes_sanitizer(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            ["trace", "--out", str(out), "--batches", "2", "--sanitize",
             "--hazard", "0.3", "--overlap", "double_buffer"]
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]


class TestSimTraceModule:
    def run_module(self, path: Path) -> subprocess.CompletedProcess:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.sim.trace", str(path)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )

    def test_overlapping_trace_exits_nonzero(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(overlapping_trace()))
        proc = self.run_module(bad)
        assert proc.returncode == 1
        assert "overlap" in proc.stdout + proc.stderr

    def test_nan_duration_exits_nonzero(self, tmp_path):
        # JSON can't carry NaN natively; Python's encoder emits the
        # non-standard literal the module's loader accepts back.
        bad = tmp_path / "nan.json"
        bad.write_text(
            json.dumps(
                {
                    "traceEvents": [
                        {"ph": "X", "name": "a", "pid": 0, "tid": 0,
                         "ts": 0.0, "dur": math.nan}
                    ]
                }
            )
        )
        proc = self.run_module(bad)
        assert proc.returncode == 1

    def test_valid_trace_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "good.json"
        assert main(["trace", "--out", str(out), "--batches", "2"]) == 0
        capsys.readouterr()
        proc = self.run_module(out)
        assert proc.returncode == 0, proc.stdout + proc.stderr
