"""Record-level conservation: golden fixtures clean, tampered flagged,
and the ``repro.sanitize/v1`` report contract."""

from __future__ import annotations

import copy
import json
from pathlib import Path

from repro.sanitize import (
    SAN_LEDGER,
    SAN_SCHEMA,
    SanFinding,
    detect_kind,
    make_sanitize_record,
    sanitize_chaos_record,
    sanitize_golden_timings,
    sanitize_payload,
    sanitize_result_record,
    sanitize_serve_record,
    with_source,
)
from repro.telemetry.schema import SANITIZE_SCHEMA, validate_sanitize_record

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_TIMINGS = json.loads(
    (REPO_ROOT / "tests" / "sim" / "golden_timings.json").read_text()
)
GOLDEN_CHAOS = json.loads(
    (REPO_ROOT / "tests" / "integration" / "golden_chaos.json").read_text()
)


class TestDetectKind:
    def test_trace(self):
        assert detect_kind({"traceEvents": []}) == "trace"

    def test_chaos(self):
        assert detect_kind(GOLDEN_CHAOS) == "chaos"

    def test_golden(self):
        assert detect_kind(GOLDEN_TIMINGS) == "golden"

    def test_result_and_perf_and_sanitize(self):
        assert detect_kind({"schema": "repro.bench.result/v1"}) == "result"
        assert detect_kind({"schema": "repro.perf/v1"}) == "perf"
        assert detect_kind({"schema": SANITIZE_SCHEMA}) == "sanitize"

    def test_unknown(self):
        assert detect_kind([1, 2]) == "unknown"
        assert detect_kind({"x": 1}) == "unknown"

    def test_unknown_payload_is_a_schema_finding(self):
        findings = sanitize_payload({"x": 1})
        assert [f.code for f in findings] == [SAN_SCHEMA]


class TestGoldenTimingsConservation:
    def test_committed_fixture_is_clean(self):
        assert sanitize_golden_timings(GOLDEN_TIMINGS) == []

    def test_tampered_total_is_bit_exact_ledger_finding(self):
        tampered = copy.deepcopy(GOLDEN_TIMINGS)
        parts = tampered["upanns"]["timing"]
        # One ULP of drift must be enough to trip the check.
        total = float.fromhex(parts["total_s"])
        import math

        parts["total_s"] = math.nextafter(total, math.inf).hex()
        findings = sanitize_golden_timings(tampered)
        assert [f.code for f in findings] == [SAN_LEDGER]
        assert "upanns.timing.total_s" in findings[0].location

    def test_negative_part_is_flagged(self):
        tampered = copy.deepcopy(GOLDEN_TIMINGS)
        tampered["flat"]["timing"]["retry_s"] = (-1.0).hex()
        findings = sanitize_golden_timings(tampered)
        assert any(f.code == SAN_LEDGER for f in findings)

    def test_unreadable_hex_is_schema_finding(self):
        tampered = copy.deepcopy(GOLDEN_TIMINGS)
        tampered["upanns"]["timing"]["total_s"] = "not-hex"
        findings = sanitize_golden_timings(tampered)
        assert [f.code for f in findings] == [SAN_SCHEMA]


class TestChaosConservation:
    def test_committed_record_is_clean(self):
        assert sanitize_chaos_record(GOLDEN_CHAOS) == []

    def test_tampered_retry_seconds(self):
        tampered = copy.deepcopy(GOLDEN_CHAOS)
        tampered["recovery"]["retry_seconds"] += 1.0
        findings = sanitize_chaos_record(tampered)
        assert [f.code for f in findings] == [SAN_LEDGER]
        assert findings[0].location == "recovery.retry_seconds"

    def test_tampered_batch_count(self):
        tampered = copy.deepcopy(GOLDEN_CHAOS)
        tampered["config"]["batches"] += 2
        findings = sanitize_chaos_record(tampered)
        assert any(f.location == "batches" for f in findings)

    def test_tampered_coverage_floor(self):
        tampered = copy.deepcopy(GOLDEN_CHAOS)
        tampered["degradation"]["coverage_floor"] = 0.123
        findings = sanitize_chaos_record(tampered)
        assert any(f.location == "degradation.coverage_floor" for f in findings)

    def test_tampered_pair_counters(self):
        tampered = copy.deepcopy(GOLDEN_CHAOS)
        tampered["faults"]["rerouted_pairs"] += 7
        findings = sanitize_chaos_record(tampered)
        assert any(f.location == "faults.rerouted_pairs" for f in findings)


class TestResultConservation:
    def make_record(self) -> dict:
        return {
            "schema": "repro.bench.result/v1",
            "utilization": {
                "makespan_s": 10.0,
                "critical_path": {"host_cpu": 4.0, "pim_bus": 6.0},
                "resources": [
                    {
                        "resource": "dpu",
                        "busy_s": 12.0,
                        "idle_s": 8.0,
                        "n_lanes": 2,
                    }
                ],
            },
        }

    def test_consistent_record_is_clean(self):
        assert sanitize_result_record(self.make_record()) == []

    def test_critical_path_gap_is_flagged(self):
        record = self.make_record()
        record["utilization"]["critical_path"]["pim_bus"] = 3.0
        findings = sanitize_result_record(record)
        assert [f.code for f in findings] == [SAN_LEDGER]
        assert "critical_path" in findings[0].location

    def test_busy_idle_window_mismatch_is_flagged(self):
        record = self.make_record()
        record["utilization"]["resources"][0]["idle_s"] = 5.0
        findings = sanitize_result_record(record)
        assert [f.code for f in findings] == [SAN_LEDGER]


class TestSanitizeRecordContract:
    def test_round_trip_validates(self):
        findings = with_source(
            [SanFinding("SAN-OVERLAP", "pim_bus", "overlapping spans")],
            "trace.json",
        )
        record = make_sanitize_record(
            name="unit",
            inputs=[{"path": "trace.json", "kind": "trace", "findings": 1}],
            findings=findings,
        )
        assert record["schema"] == SANITIZE_SCHEMA
        assert record["count"] == 1
        assert record["findings"][0]["source"] == "trace.json"
        assert validate_sanitize_record(record) == []

    def test_validator_rejects_count_mismatch(self):
        record = make_sanitize_record(name="unit", inputs=[], findings=[])
        record["count"] = 5
        assert validate_sanitize_record(record) != []

    def test_validator_rejects_missing_fields(self):
        record = make_sanitize_record(name="unit", inputs=[], findings=[])
        record["findings"] = [{"code": "SAN-OVERLAP"}]
        record["count"] = 1
        assert validate_sanitize_record(record) != []

    def test_schema_cli_recognizes_sanitize_records(self, tmp_path):
        import os
        import subprocess
        import sys

        record = make_sanitize_record(name="unit", inputs=[], findings=[])
        path = tmp_path / "san.json"
        path.write_text(json.dumps(record))
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.telemetry.schema", str(path)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "sanitize" in proc.stdout + proc.stderr


class TestTraceRecordConservation:
    """``repro.trace/v1``: query windows must derive from the spans."""

    def record(self):
        from tests.tracing.test_record import traced_record

        return traced_record(2)

    def test_detect_kind(self):
        from repro.sanitize import sanitize_trace_record  # noqa: F401

        assert detect_kind(self.record()) == "tracerec"

    def test_exported_record_is_clean(self):
        from repro.sanitize import sanitize_trace_record

        assert sanitize_trace_record(self.record()) == []
        assert sanitize_payload(self.record()) == []

    def test_tampered_latency_is_san_ledger(self):
        from repro.sanitize import sanitize_trace_record

        record = self.record()
        record["queries"][0]["latency_s"] += 1e-3
        findings = sanitize_trace_record(record)
        assert SAN_LEDGER in {f.code for f in findings}

    def test_tampered_window_is_flagged(self):
        from repro.sanitize import sanitize_trace_record

        record = self.record()
        record["queries"][-1]["t1"] += 0.25
        record["queries"][-1]["latency_s"] = (
            record["queries"][-1]["t1"] - record["queries"][-1]["t0"]
        )
        assert sanitize_trace_record(record)

    def test_tampered_span_count_is_flagged(self):
        from repro.sanitize import sanitize_trace_record

        record = self.record()
        record["queries"][0]["n_spans"] += 1
        assert sanitize_trace_record(record)


class TestServeConservation:
    def make_record(self) -> dict:
        row = {
            "offered": 10,
            "admitted": 7,
            "shed": 2,
            "timed_out": 1,
        }
        return {
            "schema": "repro.serve/v1",
            "totals": dict(row),
            "tenants": [
                dict(row, tenant="a", shed_by_reason={"queue_full": 2})
            ],
            "curve": [dict(row, offered_load=1.0, shedding=True)],
        }

    def test_consistent_record_is_clean(self):
        assert sanitize_serve_record(self.make_record()) == []

    def test_detect_kind(self):
        assert detect_kind(self.make_record()) == "serve"

    def test_totals_leak_is_flagged(self):
        record = self.make_record()
        record["totals"]["admitted"] = 8
        findings = sanitize_serve_record(record)
        assert any(
            f.code == SAN_LEDGER and f.location == "totals" for f in findings
        )
        assert any("leaked or double-counted" in f.message for f in findings)

    def test_tenant_leak_is_flagged(self):
        record = self.make_record()
        record["tenants"][0]["shed"] = 3
        findings = sanitize_serve_record(record)
        # Both the tenant's own ledger and its reason split break, and
        # the tenant sums no longer match the totals.
        assert any("tenants['a']" == f.location for f in findings)
        assert any("shed_by_reason" in f.location for f in findings)
        assert any(f.location == "totals.shed" for f in findings)

    def test_curve_point_leak_is_flagged(self):
        record = self.make_record()
        record["curve"][0]["timed_out"] = 2
        findings = sanitize_serve_record(record)
        assert [f.location for f in findings] == ["curve[0]"]

    def test_dispatches_through_sanitize_payload(self):
        record = self.make_record()
        record["totals"]["offered"] = 11
        findings = sanitize_payload(record)
        assert findings and all(f.code == SAN_LEDGER for f in findings)
