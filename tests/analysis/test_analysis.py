"""Regression, reporting and sweep harness tests."""

import numpy as np
import pytest

from repro.analysis.regression import ScalingFit, fit_scaling
from repro.analysis.report import render_bar, render_series, render_table
from repro.analysis.sweep import Sweep
from repro.errors import ConfigError


class TestScalingFit:
    def test_perfect_linear_fit(self):
        n = np.array([500, 600, 700, 800, 900])
        q = 2.0 * n + 10
        fit = fit_scaling(n, q)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(10.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict_extrapolates(self):
        """The Figure 20 methodology: fit 500-900, predict 2560."""
        n = np.array([500, 600, 700, 800, 900])
        fit = fit_scaling(n, 3.0 * n)
        assert fit.predict(2560) == pytest.approx(7680, rel=1e-6)

    def test_crossover(self):
        fit = ScalingFit(slope=2.0, intercept=0.0, r_squared=1.0)
        assert fit.crossover(3308.0) == pytest.approx(1654.0)

    def test_crossover_needs_positive_slope(self):
        with pytest.raises(ConfigError):
            ScalingFit(slope=0.0, intercept=1.0, r_squared=1.0).crossover(10.0)

    def test_noisy_fit_r2_below_one(self):
        rng = np.random.default_rng(0)
        n = np.linspace(500, 900, 20)
        q = 2 * n + rng.normal(0, 50, size=20)
        fit = fit_scaling(n, q)
        assert 0.9 < fit.r_squared < 1.0

    def test_needs_two_points(self):
        with pytest.raises(ConfigError):
            fit_scaling(np.array([1.0]), np.array([2.0]))


class TestReport:
    def test_table_renders_all_rows(self):
        text = render_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="T")
        assert "T" in text
        assert "2.5" in text and "x" in text

    def test_table_rejects_ragged(self):
        with pytest.raises(ConfigError):
            render_table(["a", "b"], [[1]])

    def test_series_columns(self):
        text = render_series("n", [1, 2], {"qps": [10.0, 20.0]})
        assert "qps" in text
        assert "20" in text

    def test_series_length_mismatch(self):
        with pytest.raises(ConfigError):
            render_series("n", [1, 2], {"qps": [10.0]})

    def test_bar_proportional(self):
        full = render_bar(10, 10, width=10)
        half = render_bar(5, 10, width=10)
        assert full.count("#") == 10
        assert half.count("#") == 5

    def test_bar_invalid_max(self):
        with pytest.raises(ConfigError):
            render_bar(1, 0)


class TestSweep:
    def test_cartesian_product(self):
        s = Sweep({"a": [1, 2], "b": ["x", "y"]})
        s.run(lambda a, b: {"v": a})
        assert len(s.results) == 4

    def test_where_filters(self):
        s = Sweep({"a": [1, 2], "b": [10, 20]})
        s.run(lambda a, b: {"v": a * b})
        hits = s.where(a=2)
        assert len(hits) == 2
        assert all(r.params["a"] == 2 for r in hits)

    def test_column_extraction(self):
        s = Sweep({"a": [1, 2, 3]})
        s.run(lambda a: {"sq": float(a * a)})
        assert s.column("sq") == [1.0, 4.0, 9.0]

    def test_result_getitem(self):
        s = Sweep({"a": [5]})
        s.run(lambda a: {"v": 7.0})
        r = s.results[0]
        assert r["a"] == 5
        assert r["v"] == 7.0
