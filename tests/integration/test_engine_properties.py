"""System-level property tests: the engine/reference equivalence must
hold for arbitrary geometries and optimization mixes, not just the
fixture configuration."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import UpANNSEngine
from repro.hardware.specs import PimSystemSpec
from repro.ivfpq import IVFPQIndex


@st.composite
def engine_cases(draw):
    dim = draw(st.sampled_from([16, 32]))
    m = draw(st.sampled_from([4, 8]))
    if dim % m:
        m = 4
    n_clusters = draw(st.sampled_from([8, 16]))
    nprobe = draw(st.integers(1, n_clusters))
    k = draw(st.integers(1, 12))
    n_dpus = draw(st.sampled_from([8, 16, 24]))
    placement = draw(st.booleans())
    cae = draw(st.booleans())
    prune = draw(st.booleans())
    tasklets = draw(st.sampled_from([1, 4, 11]))
    seed = draw(st.integers(0, 10_000))
    return dim, m, n_clusters, nprobe, k, n_dpus, placement, cae, prune, tasklets, seed


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(case=engine_cases())
def test_engine_matches_reference_for_random_configs(case):
    """Property: whatever the geometry, PIM topology, tasklet count and
    optimization mix, the engine's distances equal the reference
    index's (the paper's accuracy-preservation claim, universally)."""
    dim, m, n_clusters, nprobe, k, n_dpus, placement, cae, prune, tasklets, seed = case
    rng = np.random.default_rng(seed)
    n = 600
    vectors = rng.normal(size=(n, dim)).astype(np.float32)
    queries = rng.normal(size=(8, dim)).astype(np.float32)

    index = IVFPQIndex(dim, n_clusters, m)
    index.train(vectors, n_iter=3, rng=rng)
    index.add(vectors)

    chips = max(1, n_dpus // 8)
    cfg = SystemConfig(
        index=IndexConfig(dim=dim, n_clusters=n_clusters, m=m, train_iters=3),
        query=QueryConfig(nprobe=nprobe, k=k, batch_size=8),
        upanns=UpANNSConfig(
            enable_placement=placement,
            enable_cae=cae,
            enable_topk_pruning=prune,
            n_tasklets=tasklets,
        ),
        pim=PimSystemSpec(n_dimms=1, chips_per_dimm=chips, dpus_per_chip=8),
    )
    engine = UpANNSEngine(cfg)
    engine.build(vectors, prebuilt_index=index, rng=rng)
    res = engine.search_batch(queries)
    ref = index.search(queries, k, nprobe)

    np.testing.assert_allclose(
        np.where(np.isfinite(res.distances), res.distances, -1.0),
        np.where(np.isfinite(ref.distances), ref.distances, -1.0),
        rtol=1e-4,
        atol=1e-3,
    )
    # Timing is always positive and finite.
    assert np.isfinite(res.timing.total_s) and res.timing.total_s > 0
    # Balance statistic is well-formed.
    assert res.cycle_load_ratio >= 1.0 - 1e-9
