"""Seeded chaos regression suite: failover, degradation, recovery.

Three contracts, all deterministic:

1. **Bit-identity.**  With no fault plan (or an empty one armed), the
   engine's timings equal the committed golden fixtures bit-for-bit —
   the fault plane costs literally nothing when unused.
2. **Zero recall loss under replication.**  Killing a DPU whose every
   cluster has a live replica changes *no* search result; the pairs
   re-route and the retry/re-route work is visible on the timeline and
   in the counters.
3. **Exact graceful degradation.**  When a cluster loses every replica
   its pairs drop, per-query coverage is the exact served fraction, and
   the service recovers by re-placing around the dead set.

``golden_chaos.json`` pins the full ``repro.chaos/v1`` record the CLI
scenario emits (seed 7), so any drift in the fault model's accounting
shows up as a diff against a committed artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import UpANNSEngine, _retry_work
from repro.core.flat_engine import IVFFlatPimEngine
from repro.core.multihost import MultiHostEngine
from repro.core.scheduling import AdaptivePolicy
from repro.core.service import OnlineService
from repro.errors import ConfigError
from repro.faults import BatchFaults, FaultPlan, pick_replicated_unit
from repro.hardware.specs import PimSystemSpec
from repro.sim import PIM_BUS, STAGE_RETRY, STAGE_TRANSFER_IN, BatchWork

GOLDEN_TIMINGS = json.loads(
    (Path(__file__).parent.parent / "sim" / "golden_timings.json").read_text()
)
GOLDEN_CHAOS_PATH = Path(__file__).parent / "golden_chaos.json"


def make_config(n_dpus=16):
    return SystemConfig(
        index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=6),
        query=QueryConfig(nprobe=8, k=5, batch_size=40),
        upanns=UpANNSConfig(),
        pim=PimSystemSpec(n_dimms=1, chips_per_dimm=n_dpus // 8, dpus_per_chip=8),
    )


def build_engine(small_dataset, trained_index, history_queries, n_dpus=16):
    engine = UpANNSEngine(make_config(n_dpus=n_dpus))
    engine.build(
        small_dataset.vectors,
        history_queries=history_queries,
        prebuilt_index=trained_index,
    )
    return engine


@pytest.fixture(scope="module")
def reference(small_dataset, trained_index, history_queries, small_queries):
    """Fault-free run: engine + one served batch, never mutated."""
    engine = build_engine(small_dataset, trained_index, history_queries)
    return engine, engine.search_batch(small_queries)


TIMING_FIELDS = (
    "host_filter_s",
    "host_schedule_s",
    "transfer_in_s",
    "dpu_makespan_s",
    "transfer_out_s",
    "host_aggregate_s",
    "total_s",
)


class TestBitIdentity:
    def test_fault_free_matches_golden(self, reference):
        """The no-plan path still reproduces the committed goldens."""
        _, result = reference
        expected = GOLDEN_TIMINGS["upanns"]["timing"]
        for name in TIMING_FIELDS:
            assert getattr(result.timing, name).hex() == expected[name], name

    def test_empty_plan_is_observationally_identical(
        self, reference, small_dataset, trained_index, history_queries, small_queries
    ):
        """Arming an empty plan changes nothing, bit-for-bit."""
        _, ref = reference
        engine = build_engine(small_dataset, trained_index, history_queries)
        engine.inject(FaultPlan())
        result = engine.search_batch(small_queries)
        assert np.array_equal(result.ids, ref.ids)
        assert np.array_equal(result.distances, ref.distances)
        for name in TIMING_FIELDS:
            assert getattr(result.timing, name) == getattr(ref.timing, name), name
        assert result.timing.retry_s == 0.0
        deg = result.degraded
        assert deg is not None and not deg.is_degraded
        assert deg.coverage_floor == 1.0

    def test_no_plan_means_no_degraded_flag(self, reference):
        _, result = reference
        assert result.degraded is None


class TestReplicaFailover:
    def test_dpu_death_with_replica_loses_nothing(
        self, reference, small_dataset, trained_index, history_queries, small_queries
    ):
        _, ref = reference
        engine = build_engine(small_dataset, trained_index, history_queries)
        target = pick_replicated_unit(engine.placement)
        assert target is not None, "tiny deployment must have a replicated DPU"
        engine.inject(FaultPlan.from_specs([f"dpu:{target}@0"]))
        result = engine.search_batch(small_queries)
        # Functional results are exactly the fault-free ones.
        assert np.array_equal(result.ids, ref.ids)
        assert np.array_equal(result.distances, ref.distances)
        deg = result.degraded
        assert deg is not None
        assert not deg.is_degraded and deg.coverage_floor == 1.0
        assert deg.dropped_pairs == 0
        assert deg.rerouted_pairs > 0  # the work visibly moved
        assert deg.dead_units == (target,)
        # The dead DPU got no work.
        assert not result.assignment.per_dpu[target]

    def test_transient_transfer_fault_charges_retry_spans(
        self, reference, small_dataset, trained_index, history_queries, small_queries
    ):
        _, ref = reference
        engine = build_engine(small_dataset, trained_index, history_queries)
        engine.inject(FaultPlan.from_specs(["transfer:0@0"]))
        result = engine.search_batch(small_queries)
        # Functionally identical: the retry succeeded.
        assert np.array_equal(result.ids, ref.ids)
        deg = result.degraded
        assert deg is not None and deg.retries == 1
        assert result.timing.retry_s > 0.0
        # The retry is a real span on the bus lane, so the total
        # stretches by more than the backoff alone (retransmit too).
        retry_spans = [
            s
            for s in result.schedule.timeline(PIM_BUS).spans
            if s.stage == STAGE_RETRY
        ]
        assert len(retry_spans) == 1
        assert result.timing.retry_s == pytest.approx(
            sum(s.duration for s in retry_spans)
        )
        assert result.timing.total_s > ref.timing.total_s

    def test_escalated_units_charge_pre_death_retry_spans(self):
        """A unit fenced mid-batch still burned its retries first; they
        must appear on the bus lane like any transient's."""
        plan = FaultPlan(transfer_hazard=0.5, max_retries=3)
        state = plan.state(n_units=4)
        faults = BatchFaults(
            batch=0, newly_dead=(2,), transient={0: 1}, escalated={2: 3}
        )
        work = BatchWork()
        tin = work.work(PIM_BUS, STAGE_TRANSFER_IN, 0.0)
        _retry_work(work, faults, state, [8, 8, 8, 8], 1e9, after=tin)
        schedule = work.execute("analytic")
        spans = [
            s for s in schedule.timeline(PIM_BUS).spans if s.stage == STAGE_RETRY
        ]
        # 1 transient attempt + 3 pre-death attempts, each >= its backoff.
        assert len(spans) == 4
        assert all(s.duration >= state.backoff_s(1) for s in spans)

    def test_host_events_rejected_at_dpu_granularity(self):
        """`host` faults belong on the multihost coordinator; a DPU-pool
        engine must refuse them instead of silently killing DPU N."""
        plan = FaultPlan.from_specs(["host:0@0"])
        with pytest.raises(ConfigError):
            UpANNSEngine(make_config()).inject(plan)
        with pytest.raises(ConfigError):
            IVFFlatPimEngine(make_config()).inject(plan)


class TestGracefulDegradation:
    def test_unreplicated_loss_degrades_with_exact_coverage(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        engine = build_engine(small_dataset, trained_index, history_queries)
        # Kill every holder of cluster 0 so its pairs must drop.
        victims = sorted(set(engine.placement.replicas[0]))
        assert len(victims) < engine.pim.n_dpus
        engine.inject(
            FaultPlan.from_specs([f"dpu:{d}@0" for d in victims])
        )
        result = engine.search_batch(small_queries)
        deg = result.degraded
        assert deg is not None
        dropped = result.assignment.dropped
        if not dropped:
            pytest.skip("no query probed cluster 0 under this seed")
        assert deg.is_degraded
        assert deg.dropped_pairs == len(dropped)
        # Coverage is the exact served fraction for each query:
        # (probed - dropped) / probed, reconstructed from the schedule.
        nq = small_queries.shape[0]
        scheduled = np.zeros(nq)
        for pairs in result.assignment.per_dpu:
            for qi, _ in pairs:
                scheduled[qi] += 1
        lost = np.zeros(nq)
        for qi, _ in dropped:
            lost[qi] += 1
        denom = scheduled + lost
        expected = np.where(denom > 0, (denom - lost) / np.maximum(denom, 1), 1.0)
        assert np.allclose(deg.coverage, expected)
        assert deg.coverage_floor < 1.0


class TestServiceRecovery:
    def test_recovery_fires_once_and_restores_results(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        ref_engine = build_engine(small_dataset, trained_index, history_queries)
        ref_ids = ref_engine.search_batch(small_queries).ids

        engine = build_engine(small_dataset, trained_index, history_queries)
        target = pick_replicated_unit(engine.placement)
        engine.inject(FaultPlan.from_specs([f"dpu:{target}@1"]))
        service = OnlineService(engine)
        reports = [service.submit(small_queries) for _ in range(4)]

        # Batch 0 is pre-fault; batch 1 observes the death and recovers.
        assert reports[0].recovery_s == 0.0
        assert reports[1].recovery_s > 0.0
        assert all(r.recovery_s == 0.0 for r in reports[2:])
        assert service.recovery_count == 1
        # Post-recovery placement excludes the corpse entirely.
        assert all(
            target not in dpus for dpus in engine.placement.replicas
        )
        # Replication meant no batch lost results.
        for report in reports:
            assert np.array_equal(report.result.ids, ref_ids)
            assert not report.degraded
        assert service.summary()["recoveries"] == 1.0

    def test_drift_refresh_does_not_resurrect_dead_dpus(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        """A drift-triggered refresh after recovery must keep excluding
        the dead set — otherwise clusters land back on the corpse, the
        unchanged dead set never re-triggers recovery, and coverage
        silently degrades forever."""
        ref_engine = build_engine(small_dataset, trained_index, history_queries)
        ref_ids = ref_engine.search_batch(small_queries).ids

        engine = build_engine(small_dataset, trained_index, history_queries)
        target = pick_replicated_unit(engine.placement)
        engine.inject(FaultPlan.from_specs([f"dpu:{target}@1"]))
        # replicate_threshold=0 makes every eligible batch refresh; the
        # rate limit of 2 pins the only drift refresh to batch 3, after
        # the batch-1 recovery reset the counter.
        service = OnlineService(
            engine,
            policy=AdaptivePolicy(replicate_threshold=0.0, relocate_threshold=0.9),
            min_batches_between_refreshes=2,
        )
        reports = [service.submit(small_queries) for _ in range(5)]

        assert service.recovery_count == 1
        assert reports[1].recovery_s > 0.0
        assert service.refresh_count >= 1  # a drift refresh ran post-recovery
        # The corpse stays out of the drift-refreshed placement...
        assert all(target not in dpus for dpus in engine.placement.replicas)
        # ...so no batch ever degrades and every result stays exact.
        for report in reports:
            assert not report.degraded
            assert report.coverage_floor == 1.0
            assert np.array_equal(report.result.ids, ref_ids)


class TestMultiHostFailover:
    def test_host_loss_and_reshard(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        def fresh():
            eng = MultiHostEngine(
                host_configs=[make_config(), make_config(), make_config()]
            )
            eng.build(
                small_dataset.vectors,
                history_queries=history_queries,
                prebuilt_index=trained_index,
            )
            return eng

        ref_ids = fresh().search_batch(small_queries).ids

        engine = fresh()
        engine.inject(FaultPlan.from_specs(["host:1@0"]))
        result = engine.search_batch(small_queries)
        deg = result.degraded
        assert deg is not None
        assert engine.hosts[1] is None or 1 in engine.fault_state.dead
        # Re-shard around the corpse: full coverage comes back.
        recovery_s = engine.reshard()
        assert recovery_s > 0.0
        assert engine.hosts[1] is None
        healed = engine.search_batch(small_queries)
        assert healed.degraded is not None
        assert not healed.degraded.is_degraded
        assert np.array_equal(healed.ids, ref_ids)

    def test_non_host_events_rejected(
        self, small_dataset, trained_index, history_queries
    ):
        engine = MultiHostEngine(host_configs=[make_config(), make_config()])
        engine.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=trained_index,
        )
        with pytest.raises(ConfigError):
            engine.inject(FaultPlan.from_specs(["dpu:0@0"]))


class TestGoldenChaosRecord:
    def test_cli_scenario_matches_committed_record(self, tmp_path, capsys):
        """`repro.cli chaos --seed 7` reproduces the pinned record.

        The core is pinned explicitly so the test stays meaningful when
        the suite runs under ``REPRO_SIM_ENGINE=event``: the golden
        records the analytic-core run.
        """
        from repro.cli import main

        out = tmp_path / "chaos.json"
        argv = ["-q", "chaos", "--seed", "7", "--sim-engine", "analytic"]
        assert main([*argv, "--out", str(out)]) == 0
        capsys.readouterr()
        record = json.loads(out.read_text())
        golden = json.loads(GOLDEN_CHAOS_PATH.read_text())
        assert record == golden

    def test_event_core_matches_committed_record_modulo_engine(
        self, tmp_path, capsys
    ):
        """The event core reproduces the same chaos accounting.

        Per-batch schedules are bit-for-bit identical across cores
        (golden-equivalence guarantee), so the whole record — retries,
        coverage, recovery cost — must match the committed analytic one
        except for the recorded core name.  The run itself also passes
        the in-CLI stream sanitize gate with a mid-flight DPU death.
        """
        from repro.cli import main

        out = tmp_path / "chaos_event.json"
        argv = ["-q", "chaos", "--seed", "7", "--sim-engine", "event"]
        assert main([*argv, "--out", str(out)]) == 0
        capsys.readouterr()
        record = json.loads(out.read_text())
        golden = json.loads(GOLDEN_CHAOS_PATH.read_text())
        assert record["config"].pop("sim_engine") == "event"
        golden["config"].pop("sim_engine")
        assert record == golden

    def test_committed_record_validates(self):
        from repro.telemetry.schema import validate_chaos_record

        golden = json.loads(GOLDEN_CHAOS_PATH.read_text())
        assert validate_chaos_record(golden) == []
