"""Additional cross-module property tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.cooccurrence import mine_combinations
from repro.core.encoding import (
    build_flat_table,
    decode_distances,
    encode_cluster,
    pack_device_rows,
    unpack_device_rows,
)
from repro.data.loader import read_vecs, write_vecs
from repro.hardware.rank import PimSystem
from repro.hardware.specs import PimSystemSpec
from repro.ivfpq.adc import adc_distances
from repro.ivfpq.ivf import InvertedFile
from repro.ivfpq.kmeans import kmeans


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 80),
    length=st.sampled_from([2, 3, 4, 5]),
    m=st.sampled_from([8, 16]),
    top_m=st.integers(1, 64),
    seed=st.integers(0, 5000),
)
def test_cae_exactness_for_any_combo_length(n, length, m, top_m, seed):
    """Property: distance preservation holds for every supported
    combination length, mined set size and code distribution."""
    rng = np.random.default_rng(seed)
    # Low-cardinality codes so combinations actually repeat.
    codes = rng.integers(0, 5, size=(n, m)).astype(np.uint8)
    model = mine_combinations(codes, top_m=top_m, combo_length=length)
    encoded = encode_cluster(codes, model)
    lut = rng.random((m, 256)).astype(np.float32)
    table = build_flat_table(lut, model)
    np.testing.assert_allclose(
        decode_distances(encoded, table),
        adc_distances(codes, lut),
        rtol=1e-5,
        atol=1e-4,
    )
    # The in-band wire format round-trips too.
    addresses, lengths = unpack_device_rows(pack_device_rows(encoded), m)
    np.testing.assert_array_equal(lengths, encoded.lengths)
    np.testing.assert_array_equal(addresses, encoded.addresses)


@settings(max_examples=20, deadline=None)
@given(
    n_chunks=st.integers(1, 4),
    dim=st.sampled_from([4, 8]),
    seed=st.integers(0, 1000),
)
def test_incremental_list_building_is_order_exact(n_chunks, dim, seed):
    """Property: appending vectors in chunks yields the same inverted
    lists (same membership per cluster) as one bulk insert."""
    rng = np.random.default_rng(seed)
    n = 40 * n_chunks
    x = rng.normal(size=(n, dim)).astype(np.float32)
    ivf_bulk = InvertedFile(4).train(x, n_iter=3, rng=np.random.default_rng(0))
    labels = ivf_bulk.assign(x)
    codes = rng.integers(0, 256, size=(n, 2)).astype(np.uint8)
    ivf_bulk.build_lists(np.arange(n), labels, codes)

    ivf_inc = InvertedFile(4)
    ivf_inc.centroids = ivf_bulk.centroids
    bounds = np.linspace(0, n, n_chunks + 1).astype(int)
    for lo, hi in zip(bounds, bounds[1:]):
        ivf_inc.append_to_lists(np.arange(lo, hi), labels[lo:hi], codes[lo:hi])

    for a, b in zip(ivf_bulk.lists, ivf_inc.lists):
        np.testing.assert_array_equal(np.sort(a.ids), np.sort(b.ids))


@settings(max_examples=20, deadline=None)
@given(
    sizes=st.lists(st.integers(0, 4096).map(lambda v: v * 8), min_size=1, max_size=16),
)
def test_host_transfer_uniformity_rule(sizes):
    """Property: the parallel/serial decision depends exactly on size
    uniformity of the non-empty buffers, and serialized time is the sum."""
    pim = PimSystem(PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8))
    stats = pim.host_transfer_seconds(sizes)
    nonzero = [s for s in sizes if s > 0]
    if not nonzero:
        assert stats.seconds == 0.0
        return
    bw = pim.spec.host_transfer_bytes_per_s
    if len(set(nonzero)) == 1:
        assert stats.parallel
        assert stats.seconds == pytest.approx(nonzero[0] / bw)
    else:
        assert not stats.parallel
        assert stats.seconds == pytest.approx(sum(nonzero) / bw)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n=st.integers(20, 200),
    dim=st.integers(1, 12),
    k=st.integers(1, 8),
    seed=st.integers(0, 1000),
)
def test_kmeans_universal_invariants(n, dim, k, seed):
    """Property: for any data shape, k-means returns k centroids, full
    coverage, nearest-centroid assignments and non-negative inertia."""
    if n < k:
        return
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, dim)).astype(np.float32)
    res = kmeans(x, k, n_iter=4, rng=rng)
    assert res.centroids.shape == (k, dim)
    assert res.assignments.shape == (n,)
    assert res.assignments.min() >= 0 and res.assignments.max() < k
    assert res.inertia >= 0
    assert np.isfinite(res.centroids).all()


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(0, 30),
    dim=st.integers(1, 20),
    kind=st.sampled_from([".fvecs", ".ivecs", ".bvecs"]),
    seed=st.integers(0, 500),
)
def test_vector_codec_roundtrip_property(tmp_path_factory, n, dim, kind, seed):
    """Property: write/read round-trips for any shape and element type."""
    if n == 0:
        return  # empty files have no dimension header to preserve
    rng = np.random.default_rng(seed)
    if kind == ".fvecs":
        data = rng.normal(size=(n, dim)).astype(np.float32)
    elif kind == ".ivecs":
        data = rng.integers(-(2**20), 2**20, size=(n, dim)).astype(np.int32)
    else:
        data = rng.integers(0, 256, size=(n, dim)).astype(np.uint8)
    path = tmp_path_factory.mktemp("vecs") / f"x{kind}"
    write_vecs(path, data)
    np.testing.assert_array_equal(read_vecs(path), data)
