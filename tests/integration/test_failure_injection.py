"""Failure-injection tests: the simulator must fail loudly and precisely
when a configuration violates the architecture's physical limits."""

import numpy as np
import pytest

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import UpANNSEngine
from repro.errors import (
    ConfigError,
    MramOverflowError,
    PlacementError,
    WramOverflowError,
)
from repro.hardware.specs import DpuSpec, PimSystemSpec


def config_with(dpu: DpuSpec | None = None, n_dpus: int = 16, **upanns_kwargs):
    pim_kwargs = {}
    if dpu is not None:
        pim_kwargs["dpu"] = dpu
    return SystemConfig(
        index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=4),
        query=QueryConfig(nprobe=8, k=5, batch_size=20),
        upanns=UpANNSConfig(**upanns_kwargs),
        pim=PimSystemSpec(
            n_dimms=1, chips_per_dimm=n_dpus // 8, dpus_per_chip=8, **pim_kwargs
        ),
    )


class TestMramPressure:
    def test_tiny_mram_fails_placement(self, small_dataset, trained_index):
        """If MRAM cannot hold the clusters, the build must fail with a
        placement error (MAX_DPU_SIZE infeasible), not silently drop
        data."""
        tiny = DpuSpec(mram_bytes=4096)
        eng = UpANNSEngine(config_with(dpu=tiny, n_dpus=8))
        with pytest.raises((PlacementError, MramOverflowError)):
            eng.build(small_dataset.vectors, prebuilt_index=trained_index)

    def test_explicit_max_dpu_vectors_enforced(self, small_dataset, trained_index):
        sizes = trained_index.ivf.cluster_sizes()
        too_small = int(sizes.max()) - 1  # largest cluster cannot fit
        eng = UpANNSEngine(config_with(max_dpu_vectors=too_small))
        with pytest.raises(PlacementError):
            eng.build(small_dataset.vectors, prebuilt_index=trained_index)


class TestWramPressure:
    def test_oversized_geometry_fails_plan(self, small_dataset):
        """A (dim, m) geometry whose codebook+LUT exceed 64 KB must be
        rejected when the WRAM plan is computed."""
        cfg = SystemConfig(
            index=IndexConfig(dim=512, n_clusters=16, m=64, train_iters=2),
            query=QueryConfig(nprobe=4, k=5, batch_size=10),
            upanns=UpANNSConfig(),
            pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
        )
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(2000, 512)).astype(np.float32)
        eng = UpANNSEngine(cfg)
        with pytest.raises(WramOverflowError):
            eng.build(vectors, rng=rng)

    def test_tasklets_clamped_not_failed(self, small_dataset, trained_index):
        """Requesting 24 tasklets with big read buffers must *clamp* to
        what WRAM supports rather than failing."""
        eng = UpANNSEngine(
            config_with(n_tasklets=24, mram_read_vectors=32)
        )
        eng.build(small_dataset.vectors, prebuilt_index=trained_index)
        assert 1 <= eng.pim.dpus[0].n_tasklets <= 24


class TestBadInputs:
    def test_mismatched_query_dim(self, small_dataset, trained_index):
        eng = UpANNSEngine(config_with())
        eng.build(small_dataset.vectors, prebuilt_index=trained_index)
        with pytest.raises(Exception):
            eng.search_batch(np.zeros((3, 7), np.float32))

    def test_invalid_upanns_config(self):
        with pytest.raises(ConfigError):
            UpANNSConfig(n_tasklets=0)
        with pytest.raises(ConfigError):
            UpANNSConfig(mram_read_vectors=0)
        with pytest.raises(ConfigError):
            UpANNSConfig(replication_headroom=0.5)
        with pytest.raises(ConfigError):
            UpANNSConfig(cae_combo_length=1)

    def test_invalid_timing_scale(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                index=IndexConfig(dim=32, n_clusters=4, m=8),
                timing_scale=0.0,
            )

    def test_nprobe_beyond_clusters(self, small_dataset, trained_index):
        eng = UpANNSEngine(config_with())
        eng.build(small_dataset.vectors, prebuilt_index=trained_index)
        cfg_bad = SystemConfig(
            index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=4),
            query=QueryConfig(nprobe=64, k=5, batch_size=20),
            pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
        )
        eng_bad = UpANNSEngine(cfg_bad)
        eng_bad.build(small_dataset.vectors, prebuilt_index=trained_index)
        with pytest.raises(ConfigError):
            eng_bad.search_batch(small_dataset.vectors[:2])


class TestDegenerateData:
    def test_all_identical_vectors(self):
        """A pathological corpus (all points identical) must still build
        and search without crashing."""
        vectors = np.ones((600, 16), dtype=np.float32)
        cfg = SystemConfig(
            index=IndexConfig(dim=16, n_clusters=4, m=4, train_iters=2),
            query=QueryConfig(nprobe=2, k=3, batch_size=5),
            pim=PimSystemSpec(n_dimms=1, chips_per_dimm=1, dpus_per_chip=8),
        )
        eng = UpANNSEngine(cfg)
        eng.build(vectors)
        res = eng.search_batch(vectors[:5])
        assert (res.distances[np.isfinite(res.distances)] <= 1e-3).all()

    def test_single_query(self, small_dataset, trained_index):
        eng = UpANNSEngine(config_with())
        eng.build(small_dataset.vectors, prebuilt_index=trained_index)
        res = eng.search_batch(small_dataset.vectors[:1])
        assert res.ids.shape == (1, 5)

    def test_k_larger_than_candidates(self, small_dataset, trained_index):
        eng = UpANNSEngine(config_with())
        eng.build(small_dataset.vectors, prebuilt_index=trained_index)
        res = eng.search_batch(small_dataset.vectors[:2], k=10_000)
        # Rows padded with -1/inf beyond the candidate count.
        assert (res.ids == -1).any()
