"""Cross-module integration tests: the full UpANNS story on one corpus."""

import numpy as np
import pytest

from repro.baselines.cpu import CpuEngine
from repro.baselines.gpu import GpuEngine
from repro.baselines.pim_naive import PIM_NAIVE_CONFIG
from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import UpANNSEngine
from repro.core.scheduling import AdaptivePolicy
from repro.data import make_queries, zipf_weights
from repro.hardware.specs import PimSystemSpec
from repro.ivfpq import FlatIndex, recall_at_k
from repro.workload.batch import BatchGenerator


def small_pim(n_dpus=16):
    return PimSystemSpec(n_dimms=1, chips_per_dimm=max(1, n_dpus // 8), dpus_per_chip=8)


@pytest.fixture(scope="module")
def system(small_dataset, trained_index, history_queries):
    cfg = SystemConfig(
        index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=6),
        query=QueryConfig(nprobe=8, k=10, batch_size=40),
        upanns=UpANNSConfig(),
        pim=small_pim(),
        timing_scale=500.0,
    )
    eng = UpANNSEngine(cfg)
    eng.build(
        small_dataset.vectors,
        history_queries=history_queries,
        prebuilt_index=trained_index,
    )
    return eng


class TestAllEnginesAgree:
    def test_four_engines_identical_distances(
        self, system, small_dataset, trained_index, history_queries, small_queries
    ):
        """UpANNS, PIM-naive, CPU and GPU all search the same trained
        state and must return identical neighbor distances."""
        naive = UpANNSEngine(
            SystemConfig(
                index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=6),
                query=QueryConfig(nprobe=8, k=10, batch_size=40),
                upanns=PIM_NAIVE_CONFIG,
                pim=small_pim(),
            )
        )
        naive.build(small_dataset.vectors, prebuilt_index=trained_index)
        cpu = CpuEngine(trained_index)
        gpu = GpuEngine(trained_index)

        r_up = system.search_batch(small_queries)
        r_naive = naive.search_batch(small_queries)
        r_cpu = cpu.search_batch(small_queries, 10, 8)
        r_gpu = gpu.search_batch(small_queries, 10, 8)

        def clean(d):
            return np.where(np.isfinite(d), d, -1)

        for other in (r_naive.distances, r_cpu.distances, r_gpu.distances):
            np.testing.assert_allclose(
                clean(r_up.distances), clean(other), rtol=1e-4, atol=1e-4
            )


class TestRecallPipeline:
    def test_recall_vs_ground_truth(self, system, small_dataset, small_queries):
        flat = FlatIndex(32)
        flat.add(small_dataset.vectors)
        _, gt = flat.search(small_queries, 10)
        res = system.search_batch(small_queries)
        assert recall_at_k(res.ids, gt, 10) > 0.3

    def test_recall_grows_with_nprobe(
        self, small_dataset, trained_index, small_queries
    ):
        flat = FlatIndex(32)
        flat.add(small_dataset.vectors)
        _, gt = flat.search(small_queries, 10)
        recalls = []
        for nprobe in (1, 4, 16):
            cfg = SystemConfig(
                index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=6),
                query=QueryConfig(nprobe=nprobe, k=10, batch_size=40),
                pim=small_pim(),
            )
            eng = UpANNSEngine(cfg)
            eng.build(small_dataset.vectors, prebuilt_index=trained_index)
            recalls.append(recall_at_k(eng.search_batch(small_queries).ids, gt, 10))
        assert recalls[0] <= recalls[1] <= recalls[2] + 1e-9


class TestAdaptiveLoop:
    def test_drift_detection_and_refresh(self, small_dataset, trained_index):
        """Section 4.1.2's loop: observe drift, re-replicate, keep
        returning exact results."""
        cfg = SystemConfig(
            index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=6),
            query=QueryConfig(nprobe=4, k=5, batch_size=30),
            pim=small_pim(),
        )
        eng = UpANNSEngine(cfg)
        eng.build(small_dataset.vectors, prebuilt_index=trained_index)
        policy = AdaptivePolicy(replicate_threshold=0.02, relocate_threshold=0.6)

        gen = BatchGenerator(
            small_dataset, batch_size=30, zipf_alpha=1.0, drift_per_batch=0.6,
            rng=np.random.default_rng(3),
        )
        snapshot = eng.trace.snapshot()
        actions = []
        for batch in gen.batches(4):
            res = eng.search_batch(batch.queries)
            drift = eng.trace.drift_from(snapshot)
            action = policy.decide(drift)
            actions.append(action)
            if action != "keep":
                eng.refresh_placement()
                snapshot = eng.trace.snapshot()
            ref = trained_index.search(batch.queries, 5, 4)
            np.testing.assert_allclose(
                np.where(np.isfinite(res.distances), res.distances, -1),
                np.where(np.isfinite(ref.distances), ref.distances, -1),
                rtol=1e-4, atol=1e-4,
            )
        assert len(actions) == 4


class TestScalingBehavior:
    def test_more_dpus_higher_qps(self, small_dataset, trained_index, history_queries):
        """Figure 20 mechanism: QPS grows with DPU count."""
        pop = zipf_weights(24, 0.8)
        q = make_queries(small_dataset, 60, popularity=pop, rng=np.random.default_rng(9))
        qps = []
        for n_dpus in (8, 32):
            cfg = SystemConfig(
                index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=6),
                query=QueryConfig(nprobe=8, k=10, batch_size=60),
                pim=small_pim(n_dpus),
                timing_scale=500.0,
            )
            eng = UpANNSEngine(cfg)
            eng.build(
                small_dataset.vectors,
                history_queries=history_queries,
                prebuilt_index=trained_index,
            )
            qps.append(eng.search_batch(q).qps)
        assert qps[1] > 1.5 * qps[0]

    def test_upanns_beats_naive_on_skewed_traffic(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        results = {}
        for name, uconf in (("up", UpANNSConfig()), ("naive", PIM_NAIVE_CONFIG)):
            cfg = SystemConfig(
                index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=6),
                query=QueryConfig(nprobe=8, k=10, batch_size=40),
                upanns=uconf,
                pim=small_pim(),
                timing_scale=500.0,
            )
            eng = UpANNSEngine(cfg)
            eng.build(
                small_dataset.vectors,
                history_queries=history_queries,
                prebuilt_index=trained_index,
            )
            results[name] = eng.search_batch(small_queries).qps
        assert results["up"] > results["naive"]
