"""The self-check: src/repro is permanently simlint-clean.

These tests are the enforcement half of the acceptance criteria: the
tree lints clean, a seeded violation is caught with a non-zero exit, and
the CLI contracts (exit codes, JSON schema) hold.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path


from repro.lint import load_config, run

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def run_cli(*args: str, cwd: Path | None = None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(cwd if cwd is not None else REPO_ROOT),
        timeout=120,
    )


class TestTreeIsClean:
    def test_src_repro_has_no_findings(self):
        """The codebase must stay lint-clean forever."""
        config = load_config(SRC_REPRO)
        findings = run([SRC_REPRO], config)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_cli_exits_zero_on_clean_tree(self):
        result = run_cli(str(SRC_REPRO))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "simlint: clean" in result.stdout


class TestSeededViolations:
    def test_reintroduced_raw_dma_constant_is_caught(self, tmp_path):
        """The exact regression the tentpole guards: a raw 2048 chunk."""
        seeded = tmp_path / "kernel_copy.py"
        seeded.write_text(
            "CODEBOOK_CHUNK_BYTES = 2048  # codebook streamed at max DMA size\n"
        )
        result = run_cli(str(seeded))
        assert result.returncode == 1
        assert "HW001" in result.stdout
        assert "MAX_DMA_BYTES" in result.stdout

    def test_report_is_readable(self, tmp_path):
        seeded = tmp_path / "bad.py"
        seeded.write_text(
            "def f(dpu, total_bytes, lut_cycles):\n"
            "    dpu.charge_mram_read(total_bytes, 4096)\n"
            "    return total_bytes + lut_cycles\n"
        )
        result = run_cli(str(seeded))
        assert result.returncode == 1
        assert "bad.py:2:" in result.stdout
        assert "DMA001" in result.stdout
        assert "UNIT001" in result.stdout
        assert "finding(s)" in result.stdout

    def test_json_format_parses(self, tmp_path):
        seeded = tmp_path / "bad.py"
        seeded.write_text("CAP = 64 * 1024\n")
        result = run_cli(str(seeded), "--format", "json")
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "HW001"


class TestCliContracts:
    def test_missing_path_is_usage_error(self):
        result = run_cli("definitely/not/a/path.py")
        assert result.returncode == 2

    def test_unknown_rule_is_usage_error(self, tmp_path):
        seeded = tmp_path / "ok.py"
        seeded.write_text("x = 1\n")
        result = run_cli(str(seeded), "--select", "NOPE999")
        assert result.returncode == 2

    def test_list_rules(self):
        result = run_cli("--list-rules")
        assert result.returncode == 0
        for rule_id in (
            "HW001",
            "DMA001",
            "COST001",
            "TIME001",
            "UNIT001",
            "WRAM001",
            "OBS001",
            "DET001",
            "DET002",
            "SCHED001",
        ):
            assert rule_id in result.stdout

    def test_select_filters_findings(self, tmp_path):
        seeded = tmp_path / "bad.py"
        seeded.write_text("CHUNK = 2048\n")
        result = run_cli(str(seeded), "--select", "COST001")
        assert result.returncode == 0

    def test_pyproject_config_supplies_default_paths(self):
        """Running with no arguments from the repo root lints src/repro."""
        result = run_cli()
        assert result.returncode == 0, result.stdout + result.stderr
        assert "simlint: clean" in result.stdout


class TestMainCliIntegration:
    def test_repro_cli_lint_subcommand(self):
        from repro.cli import main

        assert main(["lint", str(SRC_REPRO)]) == 0

    def test_repro_cli_lint_finds_seeded_violation(self, tmp_path, capsys):
        from repro.cli import main

        seeded = tmp_path / "bad.py"
        seeded.write_text("FREQ = 350e6\n")
        assert main(["lint", str(seeded)]) == 1
        out = capsys.readouterr().out
        assert "HW001" in out
