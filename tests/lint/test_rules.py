"""Per-rule positive and negative fixtures for simlint."""

from __future__ import annotations

import json

import pytest

from repro.lint import SimlintConfig, all_rules, lint_source, resolve_rules
from repro.lint.report import render_json, render_text
from repro.lint.rules.unit001 import unit_of


def rule_ids(source: str, **config_kwargs) -> list[str]:
    config = SimlintConfig(**config_kwargs) if config_kwargs else None
    return [f.rule_id for f in lint_source(source, "fixture.py", config)]


class TestHW001:
    def test_literal_dma_max_flagged(self):
        assert rule_ids("CHUNK = 2048\n") == ["HW001"]

    def test_folded_expression_flagged(self):
        assert rule_ids("CAP = 64 * 1024\n") == ["HW001"]

    def test_wram_capacity_float_form_flagged(self):
        assert rule_ids("FREQ = 350e6\n") == ["HW001"]

    def test_named_import_is_clean(self):
        source = (
            "from repro.hardware.mram import MAX_DMA_BYTES\n"
            "CHUNK = MAX_DMA_BYTES\n"
        )
        assert rule_ids(source) == []

    def test_unrelated_number_is_clean(self):
        assert rule_ids("N = 2047\nM = 4096\n") == []

    def test_definition_site_exempt(self):
        config = SimlintConfig()
        findings = lint_source(
            "MAX_DMA_BYTES = 2048\n", "src/repro/hardware/mram.py", config
        )
        assert findings == []

    def test_contextual_tasklet_default_flagged(self):
        assert rule_ids("def f(n_tasklets: int = 11):\n    pass\n") == ["HW001"]

    def test_contextual_keyword_argument_flagged(self):
        assert rule_ids("configure(max_tasklets=24)\n") == ["HW001"]

    def test_contextual_class_field_flagged(self):
        source = "class C:\n    pipeline_stages: int = 14\n"
        assert rule_ids(source) == ["HW001"]

    def test_small_constant_without_context_is_clean(self):
        assert rule_ids("hours = 24\nk = 11\nstages = 3\n") == []

    def test_suppression_comment(self):
        assert rule_ids("CHUNK = 2048  # simlint: ignore[HW001]\n") == []

    def test_bare_suppression_covers_all_rules(self):
        assert rule_ids("CHUNK = 2048  # simlint: ignore\n") == []

    def test_skip_file_marker(self):
        assert rule_ids("# simlint: skip-file\nCHUNK = 2048\n") == []


class TestDMA001:
    def test_literal_chunk_flagged(self):
        source = "def f(dpu):\n    dpu.charge_mram_read(100, 4096)\n"
        assert rule_ids(source) == ["DMA001"]

    def test_keyword_chunk_flagged(self):
        source = (
            "def f(m):\n"
            "    m.bulk_transfer_cycles(100, chunk_bytes=16)\n"
        )
        assert rule_ids(source) == ["DMA001"]

    def test_illegal_size_mentioned_in_message(self):
        source = "def f(dpu):\n    dpu.charge_mram_write(64, 100)\n"
        findings = lint_source(source, "fixture.py")
        assert len(findings) == 1
        assert "not even a legal DMA size" in findings[0].message

    def test_derived_chunk_is_clean(self):
        source = (
            "def f(dpu, payload):\n"
            "    chunk = round_up_dma(payload)\n"
            "    dpu.charge_mram_read(100, chunk)\n"
        )
        assert rule_ids(source) == []

    def test_unrelated_call_is_clean(self):
        assert rule_ids("def f(x):\n    x.resize(100, 4096)\n") == []


class TestCOST001:
    def test_unpaired_charge_flagged(self):
        source = "def f(dpu):\n    dpu.charge_instructions(10)\n"
        assert rule_ids(source) == ["COST001"]

    def test_paired_charge_is_clean(self):
        source = (
            "def f(dpu):\n"
            "    dpu.charge_instructions(10)\n"
            "    t = dpu.pipeline.compute_cycles(10, 11)\n"
        )
        assert rule_ids(source) == []

    def test_elapsed_cycles_discharges(self):
        source = (
            "def f(dpu):\n"
            "    dpu.charge_instructions(10)\n"
            "    return dpu.elapsed_cycles()\n"
        )
        assert rule_ids(source) == []

    def test_nested_function_has_own_obligation(self):
        source = (
            "def outer(dpu):\n"
            "    t = dpu.pipeline.compute_cycles(1, 1)\n"
            "    def inner():\n"
            "        dpu.charge_instructions(10)\n"
            "    return inner\n"
        )
        assert rule_ids(source) == ["COST001"]


class TestUNIT001:
    def test_bytes_plus_cycles_flagged(self):
        source = "def f(total_bytes, setup_cycles):\n    return total_bytes + setup_cycles\n"
        assert rule_ids(source) == ["UNIT001"]

    def test_augmented_assignment_flagged(self):
        source = (
            "def f(total_cycles, extra_bytes):\n"
            "    total_cycles += extra_bytes\n"
        )
        assert rule_ids(source) == ["UNIT001"]

    def test_comparison_flagged(self):
        source = "def f(size_bytes, budget_cycles):\n    return size_bytes > budget_cycles\n"
        assert rule_ids(source) == ["UNIT001"]

    def test_same_unit_is_clean(self):
        source = "def f(a_bytes, b_bytes):\n    return a_bytes + b_bytes\n"
        assert rule_ids(source) == []

    def test_multiplication_is_a_conversion(self):
        source = "def f(n_bytes, cycles_factor):\n    return n_bytes * cycles_factor\n"
        assert rule_ids(source) == []

    def test_rate_suffixes_differ_from_base_unit(self):
        source = (
            "def f(bandwidth_bytes_per_s, total_bytes):\n"
            "    return bandwidth_bytes_per_s - total_bytes\n"
        )
        assert rule_ids(source) == ["UNIT001"]

    def test_unit_of_parsing(self):
        assert unit_of("setup_cycles") == "cycles"
        assert unit_of("bandwidth_bytes_per_s") == "bytes_per_s"
        assert unit_of("transfer_in_s") == "s"
        assert unit_of("offset") is None
        assert unit_of("cycles_per_tasklet") is None
        assert unit_of("s") is None  # a bare unit name carries no signal


class TestWRAM001:
    def test_overflowing_layout_flagged(self):
        source = 'X_WRAM_LAYOUT = (("p", (("a", 40000), ("b", 40000))),)\n'
        assert rule_ids(source) == ["WRAM001"]

    def test_fitting_layout_is_clean(self):
        source = 'X_WRAM_LAYOUT = (("p", (("a", 30000), ("b", 30000))),)\n'
        assert rule_ids(source) == []

    def test_sizes_fold_through_module_constants(self):
        source = (
            "ENTRY = 16\n"
            "COUNT = 4097\n"
            'X_WRAM_LAYOUT = (("p", (("big", ENTRY * COUNT),)),)\n'
        )
        assert rule_ids(source) == ["WRAM001"]  # 65552 B > 64 KiB capacity

    def test_exact_capacity_layout_is_clean(self):
        source = (
            "ENTRY = 16\n"
            "COUNT = 4096\n"
            'X_WRAM_LAYOUT = (("p", (("big", ENTRY * COUNT),)),)\n'
        )
        assert rule_ids(source) == []

    def test_explicit_offsets_overlap_flagged(self):
        source = (
            "X_WRAM_LAYOUT = ("
            '("p", (("a", 64, 0), ("b", 64, 32))),'
            ")\n"
        )
        findings = lint_source(source, "fixture.py")
        assert [f.rule_id for f in findings] == ["WRAM001"]
        assert "overlap" in findings[0].message

    def test_adjacent_explicit_offsets_are_clean(self):
        source = (
            "X_WRAM_LAYOUT = ("
            '("p", (("a", 64, 0), ("b", 64, 64))),'
            ")\n"
        )
        assert rule_ids(source) == []

    def test_region_changing_size_across_phases_flagged(self):
        source = (
            "X_WRAM_LAYOUT = ("
            '("p1", (("lut", 4096),)),'
            '("p2", (("lut", 8192),)),'
            ")\n"
        )
        findings = lint_source(source, "fixture.py")
        assert [f.rule_id for f in findings] == ["WRAM001"]
        assert "changes size" in findings[0].message

    def test_unfoldable_layout_flagged(self):
        source = 'X_WRAM_LAYOUT = (("p", (("a", mystery()),)),)\n'
        findings = lint_source(source, "fixture.py")
        assert [f.rule_id for f in findings] == ["WRAM001"]
        assert "not statically evaluable" in findings[0].message

    def test_alloc_sequence_overflow_flagged(self):
        source = (
            "def plan(wram):\n"
            "    wram.alloc('a', 50000)\n"
            "    wram.alloc('b', 50000)\n"
        )
        assert rule_ids(source) == ["WRAM001"]

    def test_alloc_sequence_with_reuse_is_clean(self):
        source = (
            "def plan(wram):\n"
            "    wram.alloc('codebook', 50000)\n"
            "    wram.free('codebook')\n"
            "    wram.alloc('buffers', 50000)\n"
        )
        assert rule_ids(source) == []

    def test_double_alloc_flagged(self):
        source = (
            "def plan(allocator):\n"
            "    allocator.alloc('a', 128)\n"
            "    allocator.alloc('a', 128)\n"
        )
        assert rule_ids(source) == ["WRAM001"]

    def test_dynamic_sizes_are_left_to_runtime(self):
        source = (
            "def plan(wram, plan_obj):\n"
            "    wram.alloc('a', plan_obj.nbytes)\n"
            "    wram.alloc('b', 90000)\n"
        )
        assert rule_ids(source) == []

    def test_control_flow_defers_to_runtime(self):
        source = (
            "def plan(wram, cond):\n"
            "    if cond:\n"
            "        wram.alloc('a', 90000)\n"
        )
        assert rule_ids(source) == []

    def test_capacity_override(self):
        source = "def plan(wram):\n    wram.alloc('a', 1024)\n"
        assert rule_ids(source, wram_capacity=512) == ["WRAM001"]
        assert rule_ids(source, wram_capacity=2048) == []


class TestTIME001:
    ENGINE_PATH = "src/repro/core/engine.py"

    def ids_at(self, source: str, path: str) -> list[str]:
        return [f.rule_id for f in lint_source(source, path)]

    def test_assignment_in_engine_flagged(self):
        source = "def f(timing, host):\n    timing.host_filter_s = host.cost()\n"
        assert self.ids_at(source, self.ENGINE_PATH) == ["TIME001"]

    def test_augmented_sum_in_engine_flagged(self):
        source = "def f(timing, extra):\n    timing.transfer_in_s += extra\n"
        assert self.ids_at(source, self.ENGINE_PATH) == ["TIME001"]

    def test_baseline_module_in_scope(self):
        source = "def f(t):\n    t.total_s = 1.0\n"
        assert self.ids_at(source, "src/repro/baselines/pim_naive.py") == [
            "TIME001"
        ]

    def test_span_recording_is_clean(self):
        source = (
            "def f(schedule, host, nq):\n"
            "    schedule.record('host_cpu', 'cluster_filter', host.cost(nq))\n"
        )
        assert self.ids_at(source, self.ENGINE_PATH) == []

    def test_local_variable_is_clean(self):
        source = "def f(host):\n    filter_s = host.cost()\n    return filter_s\n"
        assert self.ids_at(source, self.ENGINE_PATH) == []

    def test_out_of_scope_module_is_clean(self):
        source = "def f(stats, seconds):\n    stats.seconds_s = seconds\n"
        assert self.ids_at(source, "src/repro/hardware/rank.py") == []

    def test_suppression_comment(self):
        source = (
            "def f(t):\n"
            "    t.total_s = 1.0  # simlint: ignore[TIME001]\n"
        )
        assert self.ids_at(source, self.ENGINE_PATH) == []


class TestOBS001:
    def test_print_flagged(self):
        assert rule_ids('print("hello")\n') == ["OBS001"]

    def test_print_inside_function_flagged(self):
        source = "def f(x):\n    print(x)\n"
        assert rule_ids(source) == ["OBS001"]

    def test_logger_call_is_clean(self):
        source = (
            "from repro.telemetry.log import get_logger\n"
            "get_logger().info('event', n=1)\n"
        )
        assert rule_ids(source) == []

    def test_cli_module_exempt(self):
        findings = lint_source('print("result")\n', "src/repro/cli.py", None)
        assert findings == []

    def test_main_shim_exempt(self):
        findings = lint_source(
            'print("usage")\n', "src/repro/lint/__main__.py", None
        )
        assert findings == []

    def test_non_cli_path_not_exempt(self):
        findings = lint_source('print("x")\n', "src/repro/core/engine.py", None)
        assert [f.rule_id for f in findings] == ["OBS001"]

    def test_method_named_print_is_clean(self):
        # Only the builtin matters; attribute calls are fine.
        assert rule_ids("device.print(1)\n") == []

    def test_suppression_comment(self):
        assert rule_ids('print("x")  # simlint: ignore[OBS001]\n') == []


class TestEngineAndConfig:
    def test_select_limits_rules(self):
        source = (
            "CHUNK = 2048\n"
            "def f(dpu):\n    dpu.charge_instructions(1)\n"
        )
        config = SimlintConfig(select=["COST001"])
        assert [f.rule_id for f in lint_source(source, "x.py", config)] == [
            "COST001"
        ]

    def test_ignore_drops_rules(self):
        config = SimlintConfig(ignore=["HW001"])
        assert lint_source("CHUNK = 2048\n", "x.py", config) == []

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError):
            resolve_rules(["NOPE999"], None)

class TestFLT001:
    CORE_PATH = "src/repro/core/engine.py"

    def ids_at(self, source: str, path: str) -> list[str]:
        return [f.rule_id for f in lint_source(source, path)]

    def test_bare_except_flagged(self):
        source = "try:\n    f()\nexcept:\n    pass\n"
        assert self.ids_at(source, self.CORE_PATH) == ["FLT001"]

    def test_broad_exception_flagged(self):
        source = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert self.ids_at(source, self.CORE_PATH) == ["FLT001"]

    def test_base_exception_flagged(self):
        source = "try:\n    f()\nexcept BaseException:\n    pass\n"
        assert self.ids_at(source, self.CORE_PATH) == ["FLT001"]

    def test_broad_in_tuple_flagged(self):
        source = "try:\n    f()\nexcept (ValueError, Exception):\n    pass\n"
        assert self.ids_at(source, self.CORE_PATH) == ["FLT001"]

    def test_hardware_in_scope(self):
        source = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert self.ids_at(source, "src/repro/hardware/rank.py") == ["FLT001"]

    def test_typed_handler_is_clean(self):
        source = (
            "from repro.errors import DpuFailedError\n"
            "try:\n    f()\nexcept DpuFailedError:\n    pass\n"
        )
        assert self.ids_at(source, self.CORE_PATH) == []

    def test_tuple_of_typed_handlers_is_clean(self):
        source = "try:\n    f()\nexcept (ValueError, KeyError):\n    pass\n"
        assert self.ids_at(source, self.CORE_PATH) == []

    def test_out_of_scope_module_is_clean(self):
        source = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert self.ids_at(source, "src/repro/cli.py") == []
        assert self.ids_at(source, "tests/core/test_engine.py") == []

    def test_suppression_comment(self):
        source = (
            "try:\n    f()\n"
            "except Exception:  # simlint: ignore[FLT001]\n    pass\n"
        )
        assert self.ids_at(source, self.CORE_PATH) == []


class TestDET001:
    SIM_PATH = "src/repro/sim/schedule.py"

    def ids_at(self, source: str, path: str) -> list[str]:
        return [f.rule_id for f in lint_source(source, path)]

    def test_wall_clock_read_flagged(self):
        source = "import time\nt = time.time()\n"
        assert self.ids_at(source, self.SIM_PATH) == ["DET001"]

    def test_perf_counter_flagged(self):
        source = "import time\nt = time.perf_counter()\n"
        assert self.ids_at(source, self.SIM_PATH) == ["DET001"]

    def test_unseeded_default_rng_flagged(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        assert self.ids_at(source, self.SIM_PATH) == ["DET001"]

    def test_seeded_default_rng_is_clean(self):
        source = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert self.ids_at(source, self.SIM_PATH) == []

    def test_seed_keyword_is_clean(self):
        source = "import numpy as np\nrng = np.random.default_rng(seed=0)\n"
        assert self.ids_at(source, self.SIM_PATH) == []

    def test_legacy_numpy_global_rng_flagged_even_seeded(self):
        source = (
            "import numpy as np\n"
            "np.random.seed(0)\n"
            "x = np.random.rand(4)\n"
        )
        assert self.ids_at(source, self.SIM_PATH) == ["DET001", "DET001"]

    def test_stdlib_random_flagged(self):
        source = "import random\nx = random.random()\n"
        assert self.ids_at(source, self.SIM_PATH) == ["DET001"]

    def test_stdlib_random_instance_is_clean(self):
        source = "import random\nrng = random.Random(7)\n"
        assert self.ids_at(source, self.SIM_PATH) == []

    def test_datetime_now_flagged(self):
        source = "from datetime import datetime\nd = datetime.now()\n"
        assert self.ids_at(source, self.SIM_PATH) == ["DET001"]

    def test_perf_module_is_out_of_scope(self):
        source = "import time\nt = time.perf_counter()\n"
        assert self.ids_at(source, "src/repro/perf.py") == []

    def test_cli_is_out_of_scope(self):
        source = "import time\nt = time.time()\n"
        assert self.ids_at(source, "src/repro/cli.py") == []

    def test_scope_is_configurable(self):
        config = SimlintConfig(det_scoped_paths=("mylib/",))
        source = "import time\nt = time.time()\n"
        findings = lint_source(source, "mylib/clockwork.py", config)
        assert [f.rule_id for f in findings] == ["DET001"]

    def test_suppression_comment(self):
        source = (
            "import time\n"
            "t = time.time()  # simlint: ignore[DET001]\n"
        )
        assert self.ids_at(source, self.SIM_PATH) == []


class TestDET002:
    FAULTS_PATH = "src/repro/faults.py"

    def ids_at(self, source: str, path: str) -> list[str]:
        return [f.rule_id for f in lint_source(source, path)]

    def test_iterating_set_literal_flagged(self):
        source = "for u in {1, 2, 3}:\n    pass\n"
        assert self.ids_at(source, self.FAULTS_PATH) == ["DET002"]

    def test_iterating_set_call_flagged(self):
        source = "for u in set(units):\n    pass\n"
        assert self.ids_at(source, self.FAULTS_PATH) == ["DET002"]

    def test_sorted_wrapper_is_clean(self):
        source = "for u in sorted({1, 2, 3}):\n    pass\n"
        assert self.ids_at(source, self.FAULTS_PATH) == []

    def test_known_set_name_flagged(self):
        source = "for u in dead_units:\n    pass\n"
        assert self.ids_at(source, self.FAULTS_PATH) == ["DET002"]

    def test_known_set_attribute_flagged(self):
        source = "rows = [u for u in state.exclude_dpus]\n"
        assert self.ids_at(source, self.FAULTS_PATH) == ["DET002"]

    def test_set_union_expression_flagged(self):
        source = "for u in alive | dead_units:\n    pass\n"
        assert self.ids_at(source, self.FAULTS_PATH) == ["DET002"]

    def test_plain_list_iteration_is_clean(self):
        source = "for u in units:\n    pass\n"
        assert self.ids_at(source, self.FAULTS_PATH) == []

    def test_set_names_are_configurable(self):
        config = SimlintConfig(det_set_names=("shard_ids",))
        source = "for s in shard_ids:\n    pass\nfor u in dead_units:\n    pass\n"
        findings = lint_source(source, self.FAULTS_PATH, config)
        assert [f.line for f in findings] == [1]

    def test_out_of_scope_path_is_clean(self):
        source = "for u in dead_units:\n    pass\n"
        assert self.ids_at(source, "src/repro/analysis/sweep.py") == []


class TestSCHED001:
    ENGINE_PATH = "src/repro/core/engine.py"

    def ids_at(self, source: str, path: str) -> list[str]:
        return [f.rule_id for f in lint_source(source, path)]

    def test_hand_constructed_span_flagged(self):
        source = (
            "from repro.sim.span import Span\n"
            "s = Span('host_cpu', 'x', 0.0, 1.0)\n"
        )
        assert self.ids_at(source, self.ENGINE_PATH) == ["SCHED001"]

    def test_qualified_span_constructor_flagged(self):
        source = "import repro.sim.span as span\ns = span.Span('a', 'b', 0, 1)\n"
        assert self.ids_at(source, self.ENGINE_PATH) == ["SCHED001"]

    def test_spans_list_append_flagged(self):
        source = "tl.spans.append(s)\n"
        assert self.ids_at(source, self.ENGINE_PATH) == ["SCHED001"]

    def test_spans_list_extend_flagged(self):
        source = "schedule.timeline('pim_bus').spans.extend(extra)\n"
        assert self.ids_at(source, self.ENGINE_PATH) == ["SCHED001"]

    def test_record_api_is_clean(self):
        source = (
            "schedule.record('pim_bus', 'transfer_in', 0.5)\n"
            "schedule.record_at('host_cpu', 'aggregate', 1.0, 0.1)\n"
        )
        assert self.ids_at(source, self.ENGINE_PATH) == []

    def test_repro_sim_is_the_allowed_site(self):
        source = (
            "from repro.sim.span import Span\n"
            "s = Span('host_cpu', 'x', 0.0, 1.0)\n"
            "tl.spans.append(s)\n"
        )
        assert self.ids_at(source, "src/repro/sim/overlap.py") == []

    def test_allowed_paths_are_configurable(self):
        config = SimlintConfig(sched_allowed_paths=("repro/core/",))
        source = "s = Span('host_cpu', 'x', 0.0, 1.0)\n"
        findings = lint_source(source, self.ENGINE_PATH, config)
        assert findings == []

    def test_other_append_calls_are_clean(self):
        source = "rows.append(x)\nself.schedules.append(sched)\n"
        assert self.ids_at(source, self.ENGINE_PATH) == []


class TestPAR001:
    """Worker-reachable modules must not bind module-level mutable
    containers (silent fork-state under the process executor)."""

    WORKER_PATH = "src/repro/parallel/worker.py"

    def ids_at(self, source: str, path: str) -> list[str]:
        return [f.rule_id for f in lint_source(source, path)]

    def test_dict_display_flagged(self):
        assert self.ids_at("_CACHE = {}\n", self.WORKER_PATH) == ["PAR001"]

    def test_list_display_flagged(self):
        assert self.ids_at("_SEEN = []\n", self.WORKER_PATH) == ["PAR001"]

    def test_mutable_constructor_call_flagged(self):
        source = "from collections import defaultdict\n_BY = defaultdict(list)\n"
        assert self.ids_at(source, self.WORKER_PATH) == ["PAR001"]

    def test_comprehension_flagged(self):
        source = "_SQ = [i * i for i in range(4)]\n"
        assert self.ids_at(source, self.WORKER_PATH) == ["PAR001"]

    def test_module_level_augassign_flagged(self):
        assert self.ids_at("N = 0\nN += 1\n", self.WORKER_PATH) == ["PAR001"]

    def test_annotated_mutable_flagged(self):
        source = "_CACHE: dict[str, int] = {}\n"
        assert self.ids_at(source, self.WORKER_PATH) == ["PAR001"]

    def test_none_sentinel_and_immutables_clean(self):
        source = (
            "_STATE = None\n"
            "CRASH = 'sentinel'\n"
            "LIMIT = 64\n"
            "PAIR = (1, 2)\n"
            "FROZEN = frozenset({1})\n"
            "Alias = dict[str, int]\n"
        )
        assert self.ids_at(source, self.WORKER_PATH) == []

    def test_dunder_all_exempt(self):
        assert self.ids_at("__all__ = ['f']\n", self.WORKER_PATH) == []

    def test_function_and_class_bodies_clean(self):
        source = (
            "def f():\n    cache = {}\n    return cache\n"
            "class C:\n    rows = []\n"
        )
        assert self.ids_at(source, self.WORKER_PATH) == []

    def test_out_of_scope_module_clean(self):
        assert self.ids_at("_CACHE = {}\n", "src/repro/core/engine.py") == []

    def test_scope_configurable(self):
        config = SimlintConfig(par_scoped_paths=("mypkg/hot.py",))
        findings = lint_source("_CACHE = {}\n", "mypkg/hot.py", config)
        assert [f.rule_id for f in findings] == ["PAR001"]

    def test_scoped_sources_are_currently_clean(self):
        for path in (
            "src/repro/core/kernel.py",
            "src/repro/core/lut_cache.py",
            "src/repro/parallel/worker.py",
        ):
            source = open(path, encoding="utf-8").read()
            par = [
                f
                for f in lint_source(source, path)
                if f.rule_id == "PAR001"
            ]
            assert par == [], f"{path} grew module-level mutable state"


class TestInfrastructure:
    def test_syntax_error_becomes_parse_finding(self):
        findings = lint_source("def f(:\n", "broken.py")
        assert [f.rule_id for f in findings] == ["PARSE"]

    def test_all_rules_registered(self):
        assert set(all_rules()) == {
            "HW001",
            "DMA001",
            "COST001",
            "TIME001",
            "UNIT001",
            "WRAM001",
            "OBS001",
            "FLT001",
            "DET001",
            "DET002",
            "SCHED001",
            "PAR001",
        }

    def test_text_report_shape(self):
        findings = lint_source("CHUNK = 2048\n", "x.py")
        text = render_text(findings)
        assert "x.py:1:9: HW001" in text
        assert "1 finding(s)" in text
        assert render_text([]) == "simlint: clean"

    def test_json_report_round_trips(self):
        findings = lint_source("CHUNK = 2048\n", "x.py")
        payload = json.loads(render_json(findings))
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "HW001"
        assert payload["findings"][0]["line"] == 1
