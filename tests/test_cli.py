"""CLI smoke tests: generate -> build -> search -> bench wiring."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.loader import read_vecs


@pytest.fixture()
def tiny_flow(tmp_path):
    corpus = tmp_path / "corpus.fvecs"
    queries = tmp_path / "queries.fvecs"
    index = tmp_path / "index.npz"
    return corpus, queries, index


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize(
        "cmd",
        ["generate", "build", "search", "bench", "specs", "metrics", "trace",
         "perf", "chaos"],
    )
    def test_subcommands_exist(self, cmd):
        parser = build_parser()
        actions = {
            a.dest: a for a in parser._actions if a.dest == "command"
        }["command"]
        assert cmd in actions.choices


class TestFlow:
    def test_generate_build_search(self, tiny_flow, capsys):
        corpus, queries, index = tiny_flow
        assert main([
            "generate", "--out", str(corpus), "--queries-out", str(queries),
            "--n", "3000", "--components", "16", "--n-queries", "10",
        ]) == 0
        assert read_vecs(corpus).shape == (3000, 128)
        assert main([
            "build", "--vectors", str(corpus), "--index", str(index),
            "--clusters", "16", "--m", "16", "--train-iters", "3",
        ]) == 0
        assert index.exists()
        assert main([
            "search", "--index", str(index), "--queries", str(queries),
            "--k", "5", "--nprobe", "4", "--show", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "modeled QPS" in out
        assert "q0:" in out

    def test_metrics_text_table(self, capsys):
        assert main(["-q", "metrics", "--batches", "2", "--batch-size", "16"]) == 0
        out = capsys.readouterr().out
        assert "utilization over" in out
        assert "dpu/*" in out
        assert "critical path:" in out

    def test_metrics_json_round_trips_schema(self, tmp_path, capsys):
        from repro.telemetry import validate_prometheus_text, validate_result_record

        prom_path = tmp_path / "scrape.prom"
        assert main([
            "-q", "metrics", "--batches", "2", "--batch-size", "16",
            "--json", "--prom", str(prom_path),
        ]) == 0
        record = json.loads(capsys.readouterr().out)
        assert validate_result_record(record) == []
        assert record["name"] == "cli_metrics"
        assert record["qps"]["n_batches"] == 2
        assert validate_prometheus_text(prom_path.read_text()) == []

    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "NVIDIA A100" in out
        assert "UPMEM" in out

    def test_progress_lines_go_to_stderr(self, tiny_flow, capsys):
        corpus, queries, _ = tiny_flow
        main([
            "generate", "--out", str(corpus), "--queries-out", str(queries),
            "--n", "500", "--components", "8", "--n-queries", "5",
        ])
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "repro info generate.corpus" in captured.err

    def test_quiet_silences_progress(self, tiny_flow, capsys):
        corpus, _, _ = tiny_flow
        main(["-q", "generate", "--out", str(corpus), "--n", "500",
              "--components", "8"])
        captured = capsys.readouterr()
        assert captured.err == ""

    def test_generate_deterministic(self, tmp_path):
        a = tmp_path / "a.fvecs"
        b = tmp_path / "b.fvecs"
        for path in (a, b):
            main(["generate", "--out", str(path), "--n", "500",
                  "--components", "8", "--seed", "7"])
        np.testing.assert_array_equal(read_vecs(a), read_vecs(b))


class TestChaos:
    def test_default_scenario_emits_valid_record(self, tmp_path, capsys):
        from repro.telemetry import validate_chaos_record

        out = tmp_path / "chaos.json"
        assert main([
            "-q", "chaos", "--batches", "4", "--batch-size", "16",
            "--out", str(out),
        ]) == 0
        record = json.loads(out.read_text())
        assert validate_chaos_record(record) == []
        assert record["name"] == "cli_chaos"
        # The default scenario kills a replicated DPU: full failover.
        assert record["faults"]["injected"] == 1
        assert record["faults"]["rerouted_pairs"] > 0
        assert record["degradation"]["recall_delta"] == 0.0
        assert record["degradation"]["coverage_floor"] == 1.0
        assert record["recovery"]["recovery_seconds"] > 0.0
        # Human summary goes to stdout when --out is given without --json.
        assert "chaos:" in capsys.readouterr().out

    def test_explicit_transfer_fault_counts_retries(self, capsys):
        assert main([
            "-q", "chaos", "--batches", "3", "--batch-size", "16",
            "--fault", "transfer:0@1", "--json",
        ]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["faults"]["retries"] == 1
        assert record["recovery"]["retry_seconds"] > 0.0

    def test_total_loss_exits_nonzero(self, capsys):
        # The tiny deployment is one 16-DPU DIMM; killing it leaves
        # nothing to fail over to, which is an error, not a record.
        assert main([
            "-q", "chaos", "--batches", "4", "--batch-size", "16",
            "--fault", "dimm:0@1",
        ]) == 1
        assert capsys.readouterr().out == ""

    def test_metrics_with_fault_exposes_fault_counters(self, capsys):
        assert main([
            "-q", "metrics", "--batches", "3", "--batch-size", "16",
            "--fault", "dpu:0@1", "--json",
        ]) == 0
        record = json.loads(capsys.readouterr().out)
        families = {f["name"] for f in record["metrics"]["metrics"]}
        assert "repro_faults_injected_total" in families
        assert "repro_faults_dead_units" in families

    def test_metrics_without_fault_has_no_fault_families(self, capsys):
        assert main([
            "-q", "metrics", "--batches", "2", "--batch-size", "16", "--json",
        ]) == 0
        record = json.loads(capsys.readouterr().out)
        families = {f["name"] for f in record["metrics"]["metrics"]}
        assert not any(name.startswith("repro_faults_") for name in families)


class TestTraceAndExplain:
    def test_trace_out_writes_valid_record(self, tmp_path, capsys):
        from repro.tracing import validate_trace_record

        chrome = tmp_path / "trace.json"
        record_path = tmp_path / "trace_record.json"
        assert main([
            "trace", "--out", str(chrome), "--trace-out", str(record_path),
            "--batches", "2", "--batch-size", "8",
            "--overlap", "double_buffer", "--sim-engine", "event",
            "--sanitize",
        ]) == 0
        record = json.loads(record_path.read_text())
        assert record["schema"] == "repro.trace/v1"
        assert validate_trace_record(record) == []
        assert record["config"]["sim_engine"] == "event"
        assert len(record["queries"]) == 16

    def test_trace_query_dumps_span_rows(self, tmp_path, capsys):
        chrome = tmp_path / "trace.json"
        assert main([
            "trace", "--out", str(chrome), "--batches", "2",
            "--batch-size", "4", "--query", "q000005",
        ]) == 0
        rows = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip().startswith("{")
        ]
        assert rows and all("q000005" in r["trace_ids"] for r in rows)

    def test_trace_unknown_query_fails(self, tmp_path, capsys):
        chrome = tmp_path / "trace.json"
        assert main([
            "trace", "--out", str(chrome), "--batches", "1",
            "--batch-size", "4", "--query", "q999999",
        ]) == 2

    def test_explain_defaults_to_worst_query(self, capsys):
        assert main([
            "explain", "--batches", "2", "--batch-size", "8",
            "--overlap", "double_buffer", "--sim-engine", "event",
        ]) == 0
        out = capsys.readouterr().out
        assert "critical path covers" in out
        assert "query q" in out

    def test_explain_reads_exported_record(self, tmp_path, capsys):
        chrome = tmp_path / "trace.json"
        record_path = tmp_path / "record.json"
        assert main([
            "trace", "--out", str(chrome), "--trace-out", str(record_path),
            "--batches", "2", "--batch-size", "4",
        ]) == 0
        capsys.readouterr()
        assert main([
            "explain", "--record", str(record_path), "--query", "q000002",
        ]) == 0
        assert "query q000002" in capsys.readouterr().out

    def test_explain_annotates_fault_retries(self, capsys):
        assert main([
            "explain", "--batches", "3", "--batch-size", "8",
            "--sim-engine", "event", "--overlap", "double_buffer",
            "--hazard", "0.5", "--seed", "1",
        ]) == 0
        # A hazard this high faults some transfer on the worst query's
        # path; the row must carry the fault plane's annotation.
        assert "fault-retry" in capsys.readouterr().out

    def test_explain_unknown_query_fails(self, capsys):
        assert main([
            "explain", "--batches", "1", "--batch-size", "4",
            "--query", "q999999",
        ]) == 2

    def test_explain_rejects_invalid_record(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "repro.trace/v1"}))
        assert main(["explain", "--record", str(bad)]) == 2
