"""CLI smoke tests: generate -> build -> search -> bench wiring."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.loader import read_vecs


@pytest.fixture()
def tiny_flow(tmp_path):
    corpus = tmp_path / "corpus.fvecs"
    queries = tmp_path / "queries.fvecs"
    index = tmp_path / "index.npz"
    return corpus, queries, index


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize("cmd", ["generate", "build", "search", "bench", "specs"])
    def test_subcommands_exist(self, cmd):
        parser = build_parser()
        actions = {
            a.dest: a for a in parser._actions if a.dest == "command"
        }["command"]
        assert cmd in actions.choices


class TestFlow:
    def test_generate_build_search(self, tiny_flow, capsys):
        corpus, queries, index = tiny_flow
        assert main([
            "generate", "--out", str(corpus), "--queries-out", str(queries),
            "--n", "3000", "--components", "16", "--n-queries", "10",
        ]) == 0
        assert read_vecs(corpus).shape == (3000, 128)
        assert main([
            "build", "--vectors", str(corpus), "--index", str(index),
            "--clusters", "16", "--m", "16", "--train-iters", "3",
        ]) == 0
        assert index.exists()
        assert main([
            "search", "--index", str(index), "--queries", str(queries),
            "--k", "5", "--nprobe", "4", "--show", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "modeled QPS" in out
        assert "q0:" in out

    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "NVIDIA A100" in out
        assert "UPMEM" in out

    def test_generate_deterministic(self, tmp_path):
        a = tmp_path / "a.fvecs"
        b = tmp_path / "b.fvecs"
        for path in (a, b):
            main(["generate", "--out", str(path), "--n", "500",
                  "--components", "8", "--seed", "7"])
        np.testing.assert_array_equal(read_vecs(a), read_vecs(b))
