"""CLI smoke tests: generate -> build -> search -> bench wiring."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.loader import read_vecs


@pytest.fixture()
def tiny_flow(tmp_path):
    corpus = tmp_path / "corpus.fvecs"
    queries = tmp_path / "queries.fvecs"
    index = tmp_path / "index.npz"
    return corpus, queries, index


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize(
        "cmd",
        ["generate", "build", "search", "bench", "specs", "metrics", "trace", "perf"],
    )
    def test_subcommands_exist(self, cmd):
        parser = build_parser()
        actions = {
            a.dest: a for a in parser._actions if a.dest == "command"
        }["command"]
        assert cmd in actions.choices


class TestFlow:
    def test_generate_build_search(self, tiny_flow, capsys):
        corpus, queries, index = tiny_flow
        assert main([
            "generate", "--out", str(corpus), "--queries-out", str(queries),
            "--n", "3000", "--components", "16", "--n-queries", "10",
        ]) == 0
        assert read_vecs(corpus).shape == (3000, 128)
        assert main([
            "build", "--vectors", str(corpus), "--index", str(index),
            "--clusters", "16", "--m", "16", "--train-iters", "3",
        ]) == 0
        assert index.exists()
        assert main([
            "search", "--index", str(index), "--queries", str(queries),
            "--k", "5", "--nprobe", "4", "--show", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "modeled QPS" in out
        assert "q0:" in out

    def test_metrics_text_table(self, capsys):
        assert main(["-q", "metrics", "--batches", "2", "--batch-size", "16"]) == 0
        out = capsys.readouterr().out
        assert "utilization over" in out
        assert "dpu/*" in out
        assert "critical path:" in out

    def test_metrics_json_round_trips_schema(self, tmp_path, capsys):
        from repro.telemetry import validate_prometheus_text, validate_result_record

        prom_path = tmp_path / "scrape.prom"
        assert main([
            "-q", "metrics", "--batches", "2", "--batch-size", "16",
            "--json", "--prom", str(prom_path),
        ]) == 0
        record = json.loads(capsys.readouterr().out)
        assert validate_result_record(record) == []
        assert record["name"] == "cli_metrics"
        assert record["qps"]["n_batches"] == 2
        assert validate_prometheus_text(prom_path.read_text()) == []

    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "NVIDIA A100" in out
        assert "UPMEM" in out

    def test_progress_lines_go_to_stderr(self, tiny_flow, capsys):
        corpus, queries, _ = tiny_flow
        main([
            "generate", "--out", str(corpus), "--queries-out", str(queries),
            "--n", "500", "--components", "8", "--n-queries", "5",
        ])
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "repro info generate.corpus" in captured.err

    def test_quiet_silences_progress(self, tiny_flow, capsys):
        corpus, _, _ = tiny_flow
        main(["-q", "generate", "--out", str(corpus), "--n", "500",
              "--components", "8"])
        captured = capsys.readouterr()
        assert captured.err == ""

    def test_generate_deterministic(self, tmp_path):
        a = tmp_path / "a.fvecs"
        b = tmp_path / "b.fvecs"
        for path in (a, b):
            main(["generate", "--out", str(path), "--n", "500",
                  "--components", "8", "--seed", "7"])
        np.testing.assert_array_equal(read_vecs(a), read_vecs(b))
