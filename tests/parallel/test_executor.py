"""Executor backend tests: spec parsing, deterministic chunking, and the
serial/process bit-identity contract.

The property at the heart of this module: for any batch — fault-free or
faulted — the grouped engine must return byte-identical results under
``serial`` and ``process:N``, including modeled timings, coverage and
the LUT-cache hit/miss counters.  Only host wall-clock may differ.
"""

import numpy as np
import pytest

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import UpANNSEngine
from repro.errors import ConfigError, ExecutorError
from repro.faults import FaultPlan
from repro.hardware.specs import PimSystemSpec
from repro.parallel import ExecutorSpec, parse_executor_spec
from repro.parallel.executor import _chunk_indices
from repro.telemetry.registry import MetricsRegistry, set_registry

TIMING_FIELDS = (
    "host_filter_s",
    "host_schedule_s",
    "transfer_in_s",
    "dpu_makespan_s",
    "transfer_out_s",
    "host_aggregate_s",
)


def timing_hex(timing):
    return tuple(getattr(timing, f).hex() for f in TIMING_FIELDS)


class TestParseExecutorSpec:
    def test_serial_aliases(self):
        assert parse_executor_spec(None) == ExecutorSpec(kind="serial")
        assert parse_executor_spec("") == ExecutorSpec(kind="serial")
        assert parse_executor_spec("serial") == ExecutorSpec(kind="serial")
        assert parse_executor_spec("  SERIAL ") == ExecutorSpec(kind="serial")

    def test_process_with_count(self):
        spec = parse_executor_spec("process:4")
        assert spec == ExecutorSpec(kind="process", workers=4)

    def test_bare_process_sizes_to_host(self):
        spec = parse_executor_spec("process")
        assert spec.kind == "process"
        assert spec.workers >= 1

    @pytest.mark.parametrize(
        "bad", ["process:0", "process:-1", "process:x", "threads", "pool:2"]
    )
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ConfigError):
            parse_executor_spec(bad)


class TestChunkIndices:
    def test_partitions_everything_exactly_once(self):
        chunks = _chunk_indices([5, 1, 9, 3, 3, 7], 3)
        flat = sorted(i for chunk in chunks for i in chunk)
        assert flat == list(range(6))

    def test_deterministic(self):
        counts = [4, 4, 2, 8, 1, 1, 6]
        assert _chunk_indices(counts, 3) == _chunk_indices(counts, 3)

    def test_members_sorted_and_no_empty_chunks(self):
        chunks = _chunk_indices([1, 1], 8)
        assert all(chunk == sorted(chunk) for chunk in chunks)
        assert all(chunk for chunk in chunks)
        assert len(chunks) == 2

    def test_balances_load(self):
        chunks = _chunk_indices([10, 10, 1, 1], 2)
        loads = sorted(
            sum([10, 10, 1, 1][i] for i in chunk) for chunk in chunks
        )
        assert loads == [11, 11]


def make_config(**upanns_kwargs):
    return SystemConfig(
        index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=6),
        query=QueryConfig(nprobe=8, k=5, batch_size=40),
        upanns=UpANNSConfig(**upanns_kwargs),
        pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
    )


def build_engine(small_dataset, trained_index, history_queries, executor):
    eng = UpANNSEngine(make_config(), executor=executor)
    eng.build(
        small_dataset.vectors,
        history_queries=history_queries,
        prebuilt_index=trained_index,
    )
    return eng


def run_with_counters(engine, batches):
    """Run batches under a private registry; return (results, counters)."""
    mine = MetricsRegistry()
    previous = set_registry(mine)
    try:
        results = [engine.search_batch(q) for q in batches]
    finally:
        set_registry(previous)
    families = {m["name"]: m for m in mine.snapshot()["metrics"]}
    counters = {}
    for name in (
        "repro_lut_cache_hits_total",
        "repro_lut_cache_misses_total",
    ):
        fam = families.get(name)
        counters[name] = (
            fam["samples"][0]["value"] if fam and fam["samples"] else 0
        )
    return results, counters


def assert_results_identical(serial, pooled):
    for r_s, r_p in zip(serial, pooled):
        np.testing.assert_array_equal(r_s.ids, r_p.ids)
        np.testing.assert_array_equal(r_s.distances, r_p.distances)
        assert timing_hex(r_s.timing) == timing_hex(r_p.timing)
        assert r_s.heap_stats == r_p.heap_stats
        if r_s.degraded is None:
            assert r_p.degraded is None
        else:
            assert r_p.degraded is not None
            np.testing.assert_array_equal(
                r_s.degraded.coverage, r_p.degraded.coverage
            )


class TestSerialProcessBitIdentity:
    """Satellite: serial vs process-pool results are bit-identical across
    fault-free and faulted batches — ids, distances, timings, coverage
    and the LUT-cache hit/miss counters."""

    def test_fault_free_batches(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        serial_eng = build_engine(
            small_dataset, trained_index, history_queries, "serial"
        )
        pool_eng = build_engine(
            small_dataset, trained_index, history_queries, "process:2"
        )
        try:
            # Two identical batches: the first is cold (cache misses),
            # the second warm (cache hits) — counters must agree on both.
            batches = [small_queries, small_queries]
            serial, serial_counters = run_with_counters(serial_eng, batches)
            pooled, pooled_counters = run_with_counters(pool_eng, batches)
            assert_results_identical(serial, pooled)
            assert serial_counters == pooled_counters
            assert serial_counters["repro_lut_cache_hits_total"] > 0
        finally:
            serial_eng.close()
            pool_eng.close()

    def test_faulted_batches(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        plan = FaultPlan.from_specs(["dpu:1@0", "dpu:5@1"], seed=3)
        serial_eng = build_engine(
            small_dataset, trained_index, history_queries, "serial"
        )
        pool_eng = build_engine(
            small_dataset, trained_index, history_queries, "process:2"
        )
        try:
            serial_eng.inject(plan)
            pool_eng.inject(plan)
            batches = [small_queries, small_queries, small_queries]
            serial, serial_counters = run_with_counters(serial_eng, batches)
            pooled, pooled_counters = run_with_counters(pool_eng, batches)
            assert any(r.degraded is not None for r in serial)
            assert_results_identical(serial, pooled)
            assert serial_counters == pooled_counters
        finally:
            serial_eng.close()
            pool_eng.close()

    def test_cache_invalidation_propagates_to_workers(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        """clear_runtime_caches must leave pooled results identical to a
        genuinely cold serial run (workers drop their caches on the
        epoch bump, not just the parent)."""
        serial_eng = build_engine(
            small_dataset, trained_index, history_queries, "serial"
        )
        pool_eng = build_engine(
            small_dataset, trained_index, history_queries, "process:2"
        )
        try:
            for eng in (serial_eng, pool_eng):
                eng.search_batch(small_queries)  # warm everything
                eng.clear_runtime_caches()
            serial, serial_counters = run_with_counters(
                serial_eng, [small_queries]
            )
            pooled, pooled_counters = run_with_counters(
                pool_eng, [small_queries]
            )
            assert_results_identical(serial, pooled)
            assert serial_counters == pooled_counters
            assert serial_counters["repro_lut_cache_hits_total"] == 0
        finally:
            serial_eng.close()
            pool_eng.close()


class TestExecutorSelection:
    def test_env_variable_selects_backend(
        self,
        monkeypatch,
        small_dataset,
        trained_index,
        history_queries,
        small_queries,
    ):
        monkeypatch.setenv("REPRO_EXECUTOR", "process:1")
        eng = build_engine(small_dataset, trained_index, history_queries, None)
        try:
            eng.search_batch(small_queries)
            assert eng._executor_runtime is not None
            assert eng._executor_runtime.backend == "process"
        finally:
            eng.close()

    def test_explicit_field_beats_env(
        self,
        monkeypatch,
        small_dataset,
        trained_index,
        history_queries,
        small_queries,
    ):
        monkeypatch.setenv("REPRO_EXECUTOR", "process:1")
        eng = build_engine(
            small_dataset, trained_index, history_queries, "serial"
        )
        try:
            eng.search_batch(small_queries)
            assert eng._executor_runtime is None
        finally:
            eng.close()

    def test_bad_spec_surfaces_as_config_error(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        eng = build_engine(
            small_dataset, trained_index, history_queries, "threads:4"
        )
        try:
            with pytest.raises(ConfigError):
                eng.search_batch(small_queries)
        finally:
            eng.close()


class TestWorkerCrash:
    def test_crash_raises_executor_error_then_recovers(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        """A dead worker must surface as a clean ExecutorError (not a
        hang), and the engine must rebuild the pool on the next batch."""
        eng = build_engine(
            small_dataset, trained_index, history_queries, "process:2"
        )
        try:
            before = eng.search_batch(small_queries)
            runtime = eng._executor_runtime
            assert runtime is not None
            with pytest.raises(ExecutorError):
                runtime.inject_crash()
            # The pool is broken: the next batch fails fast and cleanly.
            with pytest.raises(ExecutorError):
                eng.search_batch(small_queries)
            # ... and the one after that runs on a rebuilt pool.
            after = eng.search_batch(small_queries)
            assert eng._executor_runtime is not runtime
            np.testing.assert_array_equal(before.ids, after.ids)
            np.testing.assert_array_equal(before.distances, after.distances)
        finally:
            eng.close()
