"""Shared-memory store tests: roundtrip fidelity and view hygiene."""

import numpy as np
import pytest

from repro.parallel.shm import SharedArrayStore, attach_arrays


@pytest.fixture
def arrays():
    rng = np.random.default_rng(5)
    return {
        "codebooks": rng.standard_normal((8, 256, 4)).astype(np.float32),
        "ids": np.arange(1000, dtype=np.int64),
        "codes": rng.integers(0, 256, size=(1000, 8)).astype(np.uint8),
        "lengths": rng.integers(0, 100, size=64).astype(np.int16),
        "empty": np.zeros((0, 3), dtype=np.float32),
    }


class TestSharedArrayStore:
    def test_roundtrip_is_bitwise(self, arrays):
        store = SharedArrayStore.create(arrays)
        try:
            shm, views = attach_arrays(store.name, store.manifest)
            try:
                assert set(views) == set(arrays)
                for name, original in arrays.items():
                    view = views[name]
                    assert view.dtype == original.dtype
                    assert view.shape == original.shape
                    np.testing.assert_array_equal(view, original)
            finally:
                del views
                shm.close()
        finally:
            store.close()
            store.unlink()

    def test_views_are_read_only(self, arrays):
        store = SharedArrayStore.create(arrays)
        try:
            shm, views = attach_arrays(store.name, store.manifest)
            try:
                with pytest.raises(ValueError):
                    views["ids"][0] = 99
            finally:
                del views
                shm.close()
        finally:
            store.close()
            store.unlink()

    def test_offsets_are_aligned(self, arrays):
        store = SharedArrayStore.create(arrays)
        try:
            for _dtype, _shape, offset in store.manifest.values():
                assert offset % 64 == 0
        finally:
            store.close()
            store.unlink()

    def test_unlink_is_idempotent(self, arrays):
        store = SharedArrayStore.create(arrays)
        store.close()
        store.unlink()
        store.unlink()  # second unlink of a gone segment must not raise
