"""DPU functional storage + cycle-ledger tests."""

import numpy as np
import pytest

from repro.errors import MramOverflowError
from repro.hardware.dpu import DPU
from repro.hardware.specs import DpuSpec


@pytest.fixture
def dpu():
    return DPU(dpu_id=0)


class TestMramStorage:
    def test_store_and_load(self, dpu):
        arr = np.arange(100, dtype=np.int64)
        dpu.mram_store("x", arr)
        assert dpu.mram_contains("x")
        np.testing.assert_array_equal(dpu.mram_load("x"), arr)

    def test_capacity_enforced(self):
        small = DPU(dpu_id=0, spec=DpuSpec(mram_bytes=1024))
        with pytest.raises(MramOverflowError):
            small.mram_store("big", np.zeros(2048, dtype=np.uint8))

    def test_replace_reuses_budget(self):
        small = DPU(dpu_id=0, spec=DpuSpec(mram_bytes=1024))
        small.mram_store("x", np.zeros(800, dtype=np.uint8))
        small.mram_store("x", np.zeros(1000, dtype=np.uint8))  # replace ok
        assert small.mram_used_bytes == 1000

    def test_delete_frees(self, dpu):
        dpu.mram_store("x", np.zeros(100, dtype=np.uint8))
        dpu.mram_delete("x")
        assert not dpu.mram_contains("x")
        assert dpu.mram_used_bytes == 0

    def test_free_bytes(self, dpu):
        dpu.mram_store("x", np.zeros(1000, dtype=np.uint8))
        assert dpu.mram_free_bytes == dpu.spec.mram_bytes - 1000


class TestCharging:
    def test_instruction_charge(self, dpu):
        dpu.charge_instructions(123)
        assert dpu.counters.instructions == 123

    def test_mram_read_charge(self, dpu):
        cycles = dpu.charge_mram_read(1024, 256)
        assert cycles > 0
        assert dpu.counters.mram_read_bytes == 1024
        assert dpu.counters.dma_transactions == 4
        assert dpu.counters.dma_cycles == int(cycles)

    def test_mram_write_charge(self, dpu):
        dpu.charge_mram_write(512, 256)
        assert dpu.counters.mram_write_bytes == 512

    def test_barrier_charge(self, dpu):
        c = dpu.charge_barrier()
        assert c > 0
        assert dpu.counters.barriers == 1

    def test_reset(self, dpu):
        dpu.charge_instructions(10)
        dpu.reset_counters()
        assert dpu.counters.instructions == 0


class TestTiming:
    def test_overlap_bounds(self, dpu):
        """Combined time lies between max (perfect overlap) and sum."""
        combined = dpu.combine_cycles(1000.0, 600.0)
        assert 1000.0 <= combined <= 1600.0

    def test_full_overlap(self):
        d = DPU(dpu_id=0, overlap_efficiency=1.0)
        assert d.combine_cycles(1000.0, 600.0) == pytest.approx(1000.0)

    def test_no_overlap(self):
        d = DPU(dpu_id=0, overlap_efficiency=0.0)
        assert d.combine_cycles(1000.0, 600.0) == pytest.approx(1600.0)

    def test_elapsed_accumulates_all_terms(self, dpu):
        dpu.charge_instructions(11000)
        dpu.charge_mram_read(4096, 512)
        dpu.charge_barrier()
        assert dpu.elapsed_cycles() > 0
        assert dpu.elapsed_seconds() == pytest.approx(
            dpu.elapsed_cycles() / 350e6
        )

    def test_more_tasklets_faster_compute(self):
        d1 = DPU(dpu_id=0, n_tasklets=1)
        d11 = DPU(dpu_id=1, n_tasklets=11)
        for d in (d1, d11):
            d.charge_instructions(110_000)
        assert d1.elapsed_cycles() > 10 * d11.elapsed_cycles()
