"""Pipeline throughput model tests (paper section 5.3.2 / Figure 13)."""

import pytest

from repro.errors import ConfigError
from repro.hardware.pipeline import BarrierModel, PipelineModel
from repro.hardware.specs import DpuSpec


class TestThroughput:
    def test_linear_scaling_up_to_11(self):
        """Figure 13: QPS scales linearly with tasklets up to 11."""
        p = PipelineModel()
        for t in range(1, 12):
            assert p.speedup(t) == pytest.approx(t)

    def test_saturation_beyond_11(self):
        """Beyond 11 tasklets the pipeline is already full."""
        p = PipelineModel()
        for t in range(12, 25):
            assert p.speedup(t) == pytest.approx(11)

    def test_saturation_point(self):
        assert PipelineModel().saturation_point() == 11

    def test_compute_cycles_inverse_to_throughput(self):
        p = PipelineModel()
        assert p.compute_cycles(1100, 1) == pytest.approx(11 * 1100)
        assert p.compute_cycles(1100, 11) == pytest.approx(1100)
        assert p.compute_cycles(1100, 24) == pytest.approx(1100)

    def test_zero_instructions_free(self):
        assert PipelineModel().compute_cycles(0, 5) == 0.0

    def test_negative_instructions_rejected(self):
        with pytest.raises(ConfigError):
            PipelineModel().compute_cycles(-1, 5)

    @pytest.mark.parametrize("t", [0, 25, -3])
    def test_invalid_tasklet_counts(self, t):
        with pytest.raises(ConfigError):
            PipelineModel().throughput(t)

    def test_cycles_to_seconds_uses_350mhz(self):
        p = PipelineModel()
        assert p.cycles_to_seconds(350e6) == pytest.approx(1.0)

    def test_custom_reissue_interval(self):
        spec = DpuSpec(pipeline_reissue_cycles=8)
        p = PipelineModel(spec)
        assert p.saturation_point() == 8
        assert p.speedup(8) == pytest.approx(8)
        assert p.speedup(12) == pytest.approx(8)


class TestBarrier:
    def test_cost_grows_with_tasklets(self):
        b = BarrierModel()
        assert b.barrier_cycles(11) > b.barrier_cycles(1)

    def test_includes_pipeline_drain(self):
        b = BarrierModel()
        assert b.barrier_cycles(1) >= b.spec.pipeline_stages

    def test_invalid_tasklets(self):
        with pytest.raises(ConfigError):
            BarrierModel().barrier_cycles(0)
