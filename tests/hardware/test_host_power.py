"""Host cost model and power/efficiency accounting tests."""

import pytest

from repro.errors import ConfigError
from repro.hardware.host import HostModel
from repro.hardware.power import (
    EfficiencyReport,
    dpus_for_power_budget,
    report_for_pim,
    report_for_spec,
)
from repro.hardware.specs import A100_PCIE_80GB, UPMEM_7_DIMMS


class TestHostModel:
    def test_cluster_filter_scales_with_everything(self):
        h = HostModel()
        base = h.cluster_filter_seconds(100, 512, 128)
        assert h.cluster_filter_seconds(200, 512, 128) == pytest.approx(2 * base)
        assert h.cluster_filter_seconds(100, 1024, 128) == pytest.approx(2 * base)
        assert h.cluster_filter_seconds(100, 512, 256) == pytest.approx(2 * base)

    def test_scheduling_linear_in_pairs(self):
        h = HostModel()
        assert h.scheduling_seconds(1000, 64) == pytest.approx(
            64 * h.scheduling_seconds(1000, 1)
        )

    def test_aggregate_zero_partials(self):
        assert HostModel().aggregate_seconds(10, 10, 0) == 0.0

    def test_aggregate_grows_with_k(self):
        h = HostModel()
        assert h.aggregate_seconds(10, 100, 4) > h.aggregate_seconds(10, 10, 4)

    def test_filtering_is_lightweight(self):
        """Paper: cluster filtering is 'relatively light-weighted'."""
        h = HostModel()
        # 1000 queries x 4096 centroids x 128 dims well under 10 ms.
        assert h.cluster_filter_seconds(1000, 4096, 128) < 0.01


class TestEfficiency:
    def test_qps_per_watt(self):
        r = EfficiencyReport("x", qps=324.0, peak_power_w=162.0, price_usd=2800)
        assert r.qps_per_watt == pytest.approx(2.0)

    def test_qps_per_dollar(self):
        r = EfficiencyReport("x", qps=2800.0, peak_power_w=1, price_usd=2800)
        assert r.qps_per_dollar == pytest.approx(1.0)

    def test_energy_per_query(self):
        r = EfficiencyReport("x", qps=100.0, peak_power_w=300.0, price_usd=1)
        assert r.energy_per_query_j() == pytest.approx(3.0)

    def test_energy_requires_positive_qps(self):
        r = EfficiencyReport("x", qps=0.0, peak_power_w=300.0, price_usd=1)
        with pytest.raises(ConfigError):
            r.energy_per_query_j()

    def test_report_for_spec(self):
        r = report_for_spec(A100_PCIE_80GB, 500.0)
        assert r.peak_power_w == 300
        assert r.price_usd == 20000

    def test_report_for_pim(self):
        r = report_for_pim(UPMEM_7_DIMMS, 500.0)
        assert r.peak_power_w == pytest.approx(UPMEM_7_DIMMS.peak_power_w)


class TestPowerBudget:
    def test_paper_iso_power_point(self):
        """Paper section 5.5: 300 W (one A100) buys ~1654 DPUs."""
        n = dpus_for_power_budget(UPMEM_7_DIMMS, 300.0)
        assert n == pytest.approx(1654, abs=5)

    def test_budget_scales_linearly(self):
        n1 = dpus_for_power_budget(UPMEM_7_DIMMS, 100.0)
        n3 = dpus_for_power_budget(UPMEM_7_DIMMS, 300.0)
        assert n3 == pytest.approx(3 * n1, abs=3)

    def test_invalid_budget(self):
        with pytest.raises(ConfigError):
            dpus_for_power_budget(UPMEM_7_DIMMS, 0.0)
