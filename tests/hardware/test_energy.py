"""Activity-based energy model tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hardware.energy import DpuPowerModel, batch_energy_report, peak_energy
from repro.hardware.specs import UPMEM_7_DIMMS


class TestDpuPowerModel:
    def test_fully_busy_array(self):
        m = DpuPowerModel(active_w=0.2, idle_w=0.1)
        busy = np.full(10, 2.0)
        assert m.batch_energy_j(busy, 2.0) == pytest.approx(10 * 2.0 * 0.2)

    def test_idle_array_draws_idle_power(self):
        m = DpuPowerModel(active_w=0.2, idle_w=0.1)
        busy = np.zeros(10)
        assert m.batch_energy_j(busy, 2.0) == pytest.approx(10 * 2.0 * 0.1)

    def test_imbalance_wastes_idle_energy(self):
        """The connection to Opt1: an imbalanced batch burns more idle
        energy for the same total work."""
        m = DpuPowerModel()
        total_work = 8.0
        balanced = np.full(8, 1.0)  # makespan 1.0
        skewed = np.zeros(8)
        skewed[0] = total_work  # makespan 8.0
        e_balanced = m.batch_energy_j(balanced, 1.0)
        e_skewed = m.batch_energy_j(skewed, 8.0)
        assert e_skewed > e_balanced

    def test_idle_fraction_bounds(self):
        m = DpuPowerModel()
        busy = np.array([1.0, 0.5, 0.0])
        frac = m.wasted_idle_fraction(busy, 1.0)
        assert 0.0 < frac < 1.0

    def test_makespan_must_cover_busiest(self):
        m = DpuPowerModel()
        with pytest.raises(ConfigError):
            m.batch_energy_j(np.array([2.0]), 1.0)

    def test_negative_times_rejected(self):
        m = DpuPowerModel()
        with pytest.raises(ConfigError):
            m.batch_energy_j(np.array([-1.0]), 1.0)


class TestReports:
    def test_peak_energy_matches_paper_arithmetic(self):
        # 162 W for one second.
        assert peak_energy(UPMEM_7_DIMMS, 1.0) == pytest.approx(
            UPMEM_7_DIMMS.peak_power_w
        )

    def test_peak_rejects_negative(self):
        with pytest.raises(ConfigError):
            peak_energy(UPMEM_7_DIMMS, -1.0)

    def test_report_keys_and_consistency(self):
        busy = np.random.default_rng(0).uniform(0, 1.0, size=896)
        rep = batch_energy_report(UPMEM_7_DIMMS, busy, 1.0, n_queries=100)
        assert set(rep) == {"refined_j", "peak_j", "j_per_query", "idle_fraction"}
        assert rep["refined_j"] <= rep["peak_j"] * 1.5
        assert rep["j_per_query"] == pytest.approx(rep["refined_j"] / 100)

    def test_engine_energy_report(self, small_dataset, trained_index, small_queries):
        from repro.config import IndexConfig, QueryConfig, SystemConfig
        from repro.core.engine import UpANNSEngine
        from repro.hardware.specs import PimSystemSpec

        pim = PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8)
        cfg = SystemConfig(
            index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=2),
            query=QueryConfig(nprobe=4, k=5, batch_size=40),
            pim=pim,
            timing_scale=100.0,
        )
        eng = UpANNSEngine(cfg)
        eng.build(small_dataset.vectors, prebuilt_index=trained_index)
        res = eng.search_batch(small_queries)
        rep = res.energy_report(pim)
        assert rep["refined_j"] > 0
        assert 0.0 <= rep["idle_fraction"] < 1.0
