"""WRAM allocator tests: physical addressing, reuse, overflow."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, WramOverflowError
from repro.hardware.specs import DpuSpec
from repro.hardware.wram import WramAllocator, WramRegion, replay_history


class TestBasicAllocation:
    def test_first_allocation_at_zero(self):
        a = WramAllocator()
        r = a.alloc("codebook", 1000)
        assert r.offset == 0
        assert r.size == 1000  # already 8-aligned

    def test_alignment(self):
        a = WramAllocator()
        r = a.alloc("x", 13)
        assert r.size == 16

    def test_sequential_offsets(self):
        a = WramAllocator()
        r1 = a.alloc("a", 64)
        r2 = a.alloc("b", 64)
        assert r2.offset == r1.end

    def test_duplicate_name_rejected(self):
        a = WramAllocator()
        a.alloc("x", 8)
        with pytest.raises(WramOverflowError):
            a.alloc("x", 8)

    def test_zero_size_rejected(self):
        with pytest.raises(WramOverflowError):
            WramAllocator().alloc("x", 0)

    def test_free_unknown_rejected(self):
        with pytest.raises(WramOverflowError):
            WramAllocator().free("nope")


class TestCapacity:
    def test_overflow_raises(self):
        a = WramAllocator(capacity=128)
        a.alloc("a", 64)
        with pytest.raises(WramOverflowError):
            a.alloc("b", 72)

    def test_exact_fit(self):
        a = WramAllocator(capacity=128)
        a.alloc("a", 64)
        a.alloc("b", 64)
        assert a.free_bytes == 0

    def test_used_free_accounting(self):
        a = WramAllocator(capacity=1024)
        a.alloc("a", 100)  # -> 104
        assert a.used_bytes == 104
        assert a.free_bytes == 1024 - 104


class TestReuse:
    def test_freed_region_is_reused(self):
        """The Figure 6 story: the codebook region is recycled."""
        a = WramAllocator(capacity=64 * 1024)
        cb = a.alloc("codebook", 32 * 1024)
        a.alloc("lut", 8 * 1024)
        a.free("codebook")
        buf = a.alloc("read_buffer_0", 2 * 1024)
        assert buf.offset == cb.offset  # first-fit lands in the freed hole

    def test_fragmented_gap_skipped_when_too_small(self):
        a = WramAllocator(capacity=1024)
        a.alloc("a", 64)
        a.alloc("b", 64)
        a.alloc("c", 64)
        a.free("b")
        big = a.alloc("d", 128)  # does not fit in b's 64 B hole
        assert big.offset == a.region("c").end

    def test_largest_free_block(self):
        a = WramAllocator(capacity=1024)
        a.alloc("a", 256)
        a.alloc("b", 256)
        a.free("a")
        assert a.largest_free_block() == 1024 - 512

    def test_peak_tracking(self):
        a = WramAllocator(capacity=1024)
        a.alloc("a", 512)
        a.free("a")
        a.alloc("b", 128)
        assert a.peak_bytes == 512

    def test_history_records_ops(self):
        a = WramAllocator()
        a.alloc("a", 8)
        a.free("a")
        ops = [op for op, *_ in a.history()]
        assert ops == ["alloc", "free"]


class TestDefaultCapacity:
    def test_default_capacity_comes_from_spec(self):
        """Changing DpuSpec.wram_bytes must change the simulation."""
        assert WramAllocator().capacity == DpuSpec().wram_bytes


class TestBoundaries:
    def test_adjacent_regions_do_not_overlap(self):
        """offset + size == other.offset is adjacency, not overlap."""
        a = WramRegion("a", 0, 16)
        b = WramRegion("b", 16, 16)
        assert not a.overlaps(b)
        assert not b.overlaps(a)

    def test_one_byte_overlap_detected(self):
        a = WramRegion("a", 0, 17)
        b = WramRegion("b", 16, 16)
        assert a.overlaps(b)
        assert b.overlaps(a)

    def test_allocation_lands_exactly_at_freed_boundary(self):
        a = WramAllocator(capacity=64)
        a.alloc("x", 16)
        a.alloc("y", 16)
        a.free("x")
        z = a.alloc("z", 16)
        assert z.offset == 0 and z.end == a.region("y").offset
        a.verify_no_overlap()

    def test_alignment_roundup_at_capacity_edge(self):
        """A request that only fits before alignment must be rejected."""
        a = WramAllocator(capacity=24)
        a.alloc("a", 16)
        with pytest.raises(WramOverflowError):
            a.alloc("b", 9)  # aligns to 16 > the 8 B left
        a.alloc("c", 8)  # exact remaining space still works
        assert a.free_bytes == 0

    def test_aligned_request_fills_capacity_exactly(self):
        a = WramAllocator(capacity=24)
        a.alloc("a", 17)  # aligns up to 24 == capacity
        assert a.used_bytes == 24
        with pytest.raises(WramOverflowError):
            a.alloc("b", 8)


class TestHistoryReplay:
    def test_replay_reproduces_offsets_and_peak(self):
        a = WramAllocator(capacity=1024)
        a.alloc("codebook", 512)
        a.alloc("lut", 128)
        a.free("codebook")
        a.alloc("read_buffer", 256)
        replayed = replay_history(a.history(), capacity=1024)
        assert replayed.peak_bytes == a.peak_bytes
        assert replayed.live_regions() == a.live_regions()

    def test_replay_uses_spec_capacity_by_default(self):
        a = WramAllocator()
        a.alloc("a", 64)
        assert replay_history(a.history()).capacity == DpuSpec().wram_bytes

    def test_tampered_offset_is_detected(self):
        a = WramAllocator(capacity=1024)
        a.alloc("a", 64)
        a.alloc("b", 64)
        history = a.history()
        op, name, offset, size = history[1]
        history[1] = (op, name, offset + 8, size)
        with pytest.raises(ConfigError):
            replay_history(history, capacity=1024)

    def test_replay_rejects_overflowing_log(self):
        history = [("alloc", "a", 0, 64), ("alloc", "b", 64, 128)]
        with pytest.raises(WramOverflowError):
            replay_history(history, capacity=128)

    def test_malformed_entry_rejected(self):
        with pytest.raises(ConfigError):
            replay_history([("alloc", "a", 0)])
        with pytest.raises(ConfigError):
            replay_history([("mystery", "a", 0, 8)])


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(0, 7), st.integers(8, 9000)),
        min_size=1,
        max_size=40,
    )
)
def test_random_sequences_never_overlap(ops):
    """Property: whatever the alloc/free pattern, live regions never
    overlap and never exceed capacity."""
    a = WramAllocator(capacity=32 * 1024)
    for op, slot, size in ops:
        name = f"r{slot}"
        try:
            if op == "alloc":
                a.alloc(name, size)
            else:
                a.free(name)
        except WramOverflowError:
            continue
        a.verify_no_overlap()
        assert a.used_bytes <= a.capacity
        regions = a.live_regions()
        assert all(r.end <= a.capacity for r in regions)
