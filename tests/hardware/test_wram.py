"""WRAM allocator tests: physical addressing, reuse, overflow."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WramOverflowError
from repro.hardware.wram import WramAllocator


class TestBasicAllocation:
    def test_first_allocation_at_zero(self):
        a = WramAllocator()
        r = a.alloc("codebook", 1000)
        assert r.offset == 0
        assert r.size == 1000  # already 8-aligned

    def test_alignment(self):
        a = WramAllocator()
        r = a.alloc("x", 13)
        assert r.size == 16

    def test_sequential_offsets(self):
        a = WramAllocator()
        r1 = a.alloc("a", 64)
        r2 = a.alloc("b", 64)
        assert r2.offset == r1.end

    def test_duplicate_name_rejected(self):
        a = WramAllocator()
        a.alloc("x", 8)
        with pytest.raises(WramOverflowError):
            a.alloc("x", 8)

    def test_zero_size_rejected(self):
        with pytest.raises(WramOverflowError):
            WramAllocator().alloc("x", 0)

    def test_free_unknown_rejected(self):
        with pytest.raises(WramOverflowError):
            WramAllocator().free("nope")


class TestCapacity:
    def test_overflow_raises(self):
        a = WramAllocator(capacity=128)
        a.alloc("a", 64)
        with pytest.raises(WramOverflowError):
            a.alloc("b", 72)

    def test_exact_fit(self):
        a = WramAllocator(capacity=128)
        a.alloc("a", 64)
        a.alloc("b", 64)
        assert a.free_bytes == 0

    def test_used_free_accounting(self):
        a = WramAllocator(capacity=1024)
        a.alloc("a", 100)  # -> 104
        assert a.used_bytes == 104
        assert a.free_bytes == 1024 - 104


class TestReuse:
    def test_freed_region_is_reused(self):
        """The Figure 6 story: the codebook region is recycled."""
        a = WramAllocator(capacity=64 * 1024)
        cb = a.alloc("codebook", 32 * 1024)
        a.alloc("lut", 8 * 1024)
        a.free("codebook")
        buf = a.alloc("read_buffer_0", 2 * 1024)
        assert buf.offset == cb.offset  # first-fit lands in the freed hole

    def test_fragmented_gap_skipped_when_too_small(self):
        a = WramAllocator(capacity=1024)
        a.alloc("a", 64)
        a.alloc("b", 64)
        a.alloc("c", 64)
        a.free("b")
        big = a.alloc("d", 128)  # does not fit in b's 64 B hole
        assert big.offset == a.region("c").end

    def test_largest_free_block(self):
        a = WramAllocator(capacity=1024)
        a.alloc("a", 256)
        a.alloc("b", 256)
        a.free("a")
        assert a.largest_free_block() == 1024 - 512

    def test_peak_tracking(self):
        a = WramAllocator(capacity=1024)
        a.alloc("a", 512)
        a.free("a")
        a.alloc("b", 128)
        assert a.peak_bytes == 512

    def test_history_records_ops(self):
        a = WramAllocator()
        a.alloc("a", 8)
        a.free("a")
        ops = [op for op, *_ in a.history()]
        assert ops == ["alloc", "free"]


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(0, 7), st.integers(8, 9000)),
        min_size=1,
        max_size=40,
    )
)
def test_random_sequences_never_overlap(ops):
    """Property: whatever the alloc/free pattern, live regions never
    overlap and never exceed capacity."""
    a = WramAllocator(capacity=32 * 1024)
    for op, slot, size in ops:
        name = f"r{slot}"
        try:
            if op == "alloc":
                a.alloc(name, size)
            else:
                a.free(name)
        except WramOverflowError:
            continue
        a.verify_no_overlap()
        assert a.used_bytes <= a.capacity
        regions = a.live_regions()
        assert all(r.end <= a.capacity for r in regions)
