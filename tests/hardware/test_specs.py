"""Hardware descriptor tests (paper Table 1)."""

import pytest

from repro.errors import ConfigError
from repro.hardware.specs import (
    A100_PCIE_80GB,
    GB,
    TABLE1_ROWS,
    UPMEM_7_DIMMS,
    XEON_4110_PAIR,
    CpuSpec,
    DpuSpec,
    HardwareSpec,
    PimSystemSpec,
)


class TestTable1Values:
    def test_cpu_row(self):
        assert XEON_4110_PAIR.price_usd == 1400
        assert XEON_4110_PAIR.memory_gb == pytest.approx(128)
        assert XEON_4110_PAIR.peak_power_w == 190
        assert XEON_4110_PAIR.bandwidth_gb_per_s == pytest.approx(85.3)

    def test_gpu_row(self):
        assert A100_PCIE_80GB.price_usd == 20000
        assert A100_PCIE_80GB.memory_gb == pytest.approx(80)
        assert A100_PCIE_80GB.peak_power_w == 300
        assert A100_PCIE_80GB.bandwidth_gb_per_s == pytest.approx(1935)

    def test_pim_dpu_count(self):
        # 7 DIMMs x 16 chips x 8 DPUs = 896 DPUs (paper section 5.1).
        assert UPMEM_7_DIMMS.n_dpus == 896

    def test_pim_memory_capacity(self):
        # 896 x 64 MB = 56 GiB ~= the 56 GB Table 1 reports.
        assert UPMEM_7_DIMMS.total_mram_bytes == 896 * 64 * 1024**2

    def test_pim_peak_power(self):
        # 7 x 23.22 W = 162.5 W (paper: 162 W).
        assert UPMEM_7_DIMMS.peak_power_w == pytest.approx(162.54, abs=0.01)

    def test_pim_aggregate_bandwidth_matches_table(self):
        # Table 1: 612.5 GB/s for 896 DPUs.
        assert UPMEM_7_DIMMS.aggregate_bandwidth_bytes_per_s == pytest.approx(
            612.5 * GB, rel=0.01
        )

    def test_table1_has_three_rows(self):
        assert len(TABLE1_ROWS) == 3
        assert all(isinstance(r, HardwareSpec) for r in TABLE1_ROWS)


class TestDpuSpec:
    def test_defaults_match_paper(self):
        d = DpuSpec()
        assert d.frequency_hz == 350e6
        assert d.max_tasklets == 24
        assert d.pipeline_stages == 14
        assert d.pipeline_reissue_cycles == 11
        assert d.wram_bytes == 64 * 1024
        assert d.mram_bytes == 64 * 1024**2
        assert d.iram_bytes == 24 * 1024

    def test_reissue_cannot_exceed_depth(self):
        with pytest.raises(ConfigError):
            DpuSpec(pipeline_stages=10, pipeline_reissue_cycles=11)

    def test_needs_a_tasklet(self):
        with pytest.raises(ConfigError):
            DpuSpec(max_tasklets=0)


class TestPimSystemSpec:
    def test_with_n_dpus_preserves_count(self):
        scaled = UPMEM_7_DIMMS.with_n_dpus(500)
        assert scaled.n_dpus == 500

    def test_with_n_dpus_scales_power_linearly(self):
        per_dpu = UPMEM_7_DIMMS.peak_power_w / UPMEM_7_DIMMS.n_dpus
        scaled = UPMEM_7_DIMMS.with_n_dpus(1654)
        assert scaled.peak_power_w == pytest.approx(1654 * per_dpu)

    def test_with_n_dpus_scales_price(self):
        scaled = UPMEM_7_DIMMS.with_n_dpus(UPMEM_7_DIMMS.n_dpus * 2)
        assert scaled.price_usd == pytest.approx(UPMEM_7_DIMMS.price_usd * 2)

    def test_with_n_dpus_rejects_zero(self):
        with pytest.raises(ConfigError):
            UPMEM_7_DIMMS.with_n_dpus(0)

    def test_as_hardware_spec_roundtrip(self):
        row = UPMEM_7_DIMMS.as_hardware_spec()
        assert row.memory_bytes == UPMEM_7_DIMMS.total_mram_bytes
        assert row.peak_power_w == pytest.approx(UPMEM_7_DIMMS.peak_power_w)

    def test_invalid_topology(self):
        with pytest.raises(ConfigError):
            PimSystemSpec(n_dimms=0)


class TestHardwareSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"price_usd": 0},
            {"memory_bytes": 0},
            {"peak_power_w": -1},
            {"bandwidth_bytes_per_s": 0},
        ],
    )
    def test_rejects_non_positive(self, kwargs):
        base = dict(
            name="x",
            price_usd=1.0,
            memory_bytes=1,
            peak_power_w=1.0,
            bandwidth_bytes_per_s=1.0,
        )
        base.update(kwargs)
        with pytest.raises(ConfigError):
            HardwareSpec(**base)

    def test_cpu_spec_extra_fields(self):
        assert XEON_4110_PAIR.cores == 16
        assert isinstance(XEON_4110_PAIR, CpuSpec)
