"""PIM system topology and host-transfer semantics tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hardware.rank import PimSystem
from repro.hardware.specs import PimSystemSpec


@pytest.fixture
def small_pim():
    return PimSystem(PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=4))


class TestTopology:
    def test_dpu_count(self, small_pim):
        assert small_pim.n_dpus == 8
        assert len(small_pim.dpus) == 8

    def test_dpu_ids_sequential(self, small_pim):
        assert [d.dpu_id for d in small_pim.dpus] == list(range(8))

    def test_invalid_tasklets(self):
        with pytest.raises(ConfigError):
            PimSystem(PimSystemSpec(), n_tasklets=99)

    def test_reset_counters(self, small_pim):
        small_pim.dpu(0).charge_instructions(5)
        small_pim.reset_counters()
        assert small_pim.dpu(0).counters.instructions == 0


class TestHostTransfers:
    def test_uniform_buffers_parallel(self, small_pim):
        """Equal per-DPU buffers transfer concurrently (paper 2.2)."""
        stats = small_pim.host_transfer_seconds([1024] * 8)
        assert stats.parallel
        assert stats.seconds == pytest.approx(
            1024 / small_pim.spec.host_transfer_bytes_per_s
        )

    def test_non_uniform_buffers_serialize(self, small_pim):
        sizes = [1024] * 7 + [2048]
        stats = small_pim.host_transfer_seconds(sizes)
        assert not stats.parallel
        assert stats.seconds == pytest.approx(
            sum(sizes) / small_pim.spec.host_transfer_bytes_per_s
        )

    def test_serialized_much_slower_than_uniform(self, small_pim):
        uniform = small_pim.host_transfer_seconds([1024] * 8).seconds
        ragged = small_pim.host_transfer_seconds([1024] * 7 + [1032]).seconds
        assert ragged > 7 * uniform

    def test_empty_transfer(self, small_pim):
        stats = small_pim.host_transfer_seconds([])
        assert stats.seconds == 0.0

    def test_zero_sizes_skipped(self, small_pim):
        stats = small_pim.host_transfer_seconds([0, 1024, 0, 1024])
        assert stats.parallel

    def test_broadcast(self, small_pim):
        assert small_pim.broadcast_seconds(2_000_000_000) == pytest.approx(
            2_000_000_000 / small_pim.spec.host_transfer_bytes_per_s
        )
        assert small_pim.broadcast_seconds(0) == 0.0

    def test_gather_is_transfer(self, small_pim):
        assert small_pim.gather_seconds([64] * 8).parallel


class TestAggregates:
    def test_makespan_is_max(self, small_pim):
        small_pim.dpu(3).charge_instructions(1_000_000)
        small_pim.dpu(5).charge_instructions(10_000)
        assert small_pim.makespan_seconds() == pytest.approx(
            small_pim.dpu(3).elapsed_seconds()
        )

    def test_load_ratio_balanced(self, small_pim):
        for d in small_pim.dpus:
            d.charge_instructions(1000)
        assert small_pim.load_ratio() == pytest.approx(1.0)

    def test_load_ratio_skewed(self, small_pim):
        small_pim.dpu(0).charge_instructions(8000)
        for d in small_pim.dpus[1:]:
            d.charge_instructions(1000)
        assert small_pim.load_ratio() > 4.0

    def test_load_ratio_idle_system(self, small_pim):
        assert small_pim.load_ratio() == 1.0

    def test_total_mram_used(self, small_pim):
        small_pim.dpu(0).mram_store("x", np.zeros(100, dtype=np.uint8))
        small_pim.dpu(1).mram_store("y", np.zeros(50, dtype=np.uint8))
        assert small_pim.total_mram_used() == 150
