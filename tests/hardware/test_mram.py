"""MRAM DMA model tests (paper Figure 7 latency curve)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import DmaAlignmentError
from repro.hardware.mram import (
    MAX_DMA_BYTES,
    MIN_DMA_BYTES,
    MramModel,
    round_up_dma,
    validate_dma_size,
)

legal_sizes = st.integers(min_value=1, max_value=MAX_DMA_BYTES // 8).map(lambda k: 8 * k)


class TestValidation:
    @pytest.mark.parametrize("size", [8, 16, 256, 2048])
    def test_legal_sizes_pass(self, size):
        validate_dma_size(size)

    @pytest.mark.parametrize("size", [0, 4, 7, 12, 2049, 4096, -8])
    def test_illegal_sizes_raise(self, size):
        with pytest.raises(DmaAlignmentError):
            validate_dma_size(size)

    def test_round_up_small_payload(self):
        assert round_up_dma(1) == MIN_DMA_BYTES
        assert round_up_dma(9) == 16
        assert round_up_dma(2048) == 2048

    def test_round_up_too_large(self):
        with pytest.raises(DmaAlignmentError):
            round_up_dma(MAX_DMA_BYTES + 1)


class TestLatencyCurve:
    def test_knee_shape(self):
        """Figure 7: slow growth below ~256 B, near-linear beyond."""
        m = MramModel()
        small_slope = (m.latency_cycles(256) - m.latency_cycles(8)) / (256 - 8)
        large_slope = (m.latency_cycles(2048) - m.latency_cycles(512)) / (2048 - 512)
        assert large_slope > 3 * small_slope

    @given(a=legal_sizes, b=legal_sizes)
    def test_monotonic_in_size(self, a, b):
        m = MramModel()
        if a <= b:
            assert m.latency_cycles(a) <= m.latency_cycles(b)
        else:
            assert m.latency_cycles(a) >= m.latency_cycles(b)

    def test_setup_cost_dominates_smallest(self):
        m = MramModel()
        assert m.latency_cycles(8) < 1.1 * m.setup_cycles + 8

    def test_latency_curve_vectorized_matches_scalar(self):
        m = MramModel()
        sizes = np.array([8, 64, 256, 1024, 2048])
        curve = m.latency_curve(sizes)
        for s, c in zip(sizes, curve):
            assert c == pytest.approx(m.latency_cycles(int(s)))

    def test_latency_curve_rejects_illegal(self):
        with pytest.raises(DmaAlignmentError):
            MramModel().latency_curve(np.array([8, 10]))


class TestBulkTransfer:
    def test_zero_bytes_free(self):
        assert MramModel().bulk_transfer_cycles(0, 64) == 0.0

    def test_exact_multiple(self):
        m = MramModel()
        assert m.bulk_transfer_cycles(640, 64) == pytest.approx(
            10 * m.latency_cycles(64)
        )

    def test_tail_rounded_up(self):
        m = MramModel()
        # 100 B with 64 B chunks: one full chunk + 36 B tail -> 40 B DMA.
        expected = m.latency_cycles(64) + m.latency_cycles(40)
        assert m.bulk_transfer_cycles(100, 64) == pytest.approx(expected)

    def test_transactions_count(self):
        m = MramModel()
        assert m.transactions_for(0, 64) == 0
        assert m.transactions_for(640, 64) == 10
        assert m.transactions_for(641, 64) == 11

    @given(total=st.integers(1, 100_000), chunk=st.integers(1, 16).map(lambda k: 8 * k))
    def test_bigger_chunks_never_slower_below_knee(self, total, chunk):
        """Below the latency knee, larger DMA chunks amortize setup."""
        m = MramModel()
        assert m.bulk_transfer_cycles(total, chunk * 2) <= m.bulk_transfer_cycles(
            total, chunk
        ) + m.latency_cycles(chunk * 2)

    def test_effective_bandwidth_rises_then_saturates(self):
        """Figure 7/17 mechanism: strong gains up to the knee, 'minimal
        returns' beyond — larger reads only cost WRAM."""
        m = MramModel()
        bw = m.effective_bandwidth_bytes_per_cycle
        assert bw(256) > 5 * bw(8)  # steep gains below the knee
        # Beyond the knee, bandwidth changes by < 15 % per doubling.
        for s in (512, 1024):
            assert abs(bw(2 * s) - bw(s)) / bw(s) < 0.15

    def test_bandwidth_saturates_past_knee(self):
        """Diminishing returns past the knee (paper: ~16 vectors)."""
        m = MramModel()
        gain_small = m.effective_bandwidth_bytes_per_cycle(
            128
        ) / m.effective_bandwidth_bytes_per_cycle(32)
        gain_large = m.effective_bandwidth_bytes_per_cycle(
            2048
        ) / m.effective_bandwidth_bytes_per_cycle(512)
        assert gain_small > gain_large
