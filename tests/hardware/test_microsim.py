"""Micro-simulator tests: the analytic models must match the cycle-level
behaviour they summarize."""

import pytest

from repro.errors import ConfigError
from repro.hardware.microsim import (
    MicroSim,
    barrier,
    compute_block,
    dma_read,
)
from repro.hardware.mram import MramModel
from repro.hardware.pipeline import PipelineModel


@pytest.fixture(scope="module")
def sim():
    return MicroSim()


class TestComputeThroughput:
    def test_single_tasklet_is_one_over_reissue(self, sim):
        """One tasklet can only issue every 11 cycles."""
        assert sim.throughput(1) == pytest.approx(1 / 11, rel=0.02)

    @pytest.mark.parametrize("t", [2, 4, 8, 11])
    def test_linear_scaling_below_knee(self, sim, t):
        assert sim.throughput(t) == pytest.approx(t / 11, rel=0.02)

    @pytest.mark.parametrize("t", [12, 16, 24])
    def test_saturation_beyond_knee(self, sim, t):
        """The Figure-13 knee *emerges* from round-robin dispatch with
        the 11-cycle reissue interval — it is not hard-coded here."""
        assert sim.throughput(t) == pytest.approx(1.0, rel=0.02)

    def test_matches_analytic_model_across_range(self, sim):
        analytic = PipelineModel()
        for t in (1, 3, 7, 11, 15, 24):
            measured = sim.throughput(t)
            assert measured == pytest.approx(analytic.throughput(t), rel=0.03)

    def test_invalid_tasklet_count(self, sim):
        with pytest.raises(ConfigError):
            sim.run([])
        with pytest.raises(ConfigError):
            sim.run([compute_block(1)] * 25)


class TestDma:
    def test_single_dma_costs_model_latency(self, sim):
        cycles = sim.run([dma_read(512)])
        expected = MramModel().latency_cycles(512)
        assert cycles == pytest.approx(expected, abs=3)

    def test_dma_engine_serializes_across_tasklets(self, sim):
        """One MRAM engine: concurrent tasklet DMAs queue up."""
        t = 8
        cycles = sim.run([dma_read(512) for _ in range(t)])
        single = MramModel().latency_cycles(512)
        assert cycles == pytest.approx(t * single, rel=0.05)

    def test_dma_overlaps_compute_of_other_tasklets(self, sim):
        """While one tasklet waits on DMA, others keep the pipeline
        busy — the overlap Opt2's thread scheduling exploits."""
        dma_prog = dma_read(2048) + compute_block(10)
        compute_prog = compute_block(400)
        both = sim.run([dma_prog] + [compute_prog] * 10)
        compute_only = sim.run([compute_prog] * 10)
        dma_only = sim.run([dma_prog])
        # Far better than serial execution of the two workloads.
        assert both < 0.85 * (compute_only + dma_only)

    def test_small_reads_charge_more_per_byte(self, sim):
        """The Figure-17 mechanism at the cycle level: streaming the
        same bytes through smaller DMA chunks takes longer."""
        total, small_chunk, big_chunk = 8192, 64, 1024
        small = sim.run([dma_read(small_chunk) * (total // small_chunk)])
        big = sim.run([dma_read(big_chunk) * (total // big_chunk)])
        assert small > 1.5 * big


class TestBarriers:
    def test_barrier_waits_for_stragglers(self, sim):
        fast = compute_block(10) + barrier() + compute_block(10)
        slow = compute_block(400) + barrier() + compute_block(10)
        cycles = sim.run([fast, slow])
        # Must exceed the slow tasklet's pre-barrier work alone.
        assert cycles > sim.run([compute_block(400)])

    def test_all_arrive_then_proceed(self, sim):
        progs = [compute_block(50) + barrier() + compute_block(50) for _ in range(4)]
        cycles = sim.run(progs)
        no_barrier = sim.run([compute_block(100)] * 4)
        # The barrier costs a pipeline drain, not much more, when the
        # tasklets are symmetric.
        assert cycles < no_barrier + 5 * 14

    def test_unbalanced_work_past_barrier(self, sim):
        progs = [barrier() + compute_block(n) for n in (10, 10, 500)]
        cycles = sim.run(progs)
        assert cycles > 500  # the long tail dominates


class TestFastForward:
    def test_idle_gaps_are_skipped_correctly(self, sim):
        """A single tasklet with sparse readiness still yields exact
        cycle counts (fast-forward must not skip events)."""
        cycles = sim.run([compute_block(7)])
        # 7 instructions, one per 11 cycles; last issues at cycle 66.
        assert cycles == pytest.approx(7 * 11, abs=11)
