"""Utilization + critical-path attribution over hand-built schedules."""

import pytest

from repro.sim import HOST_CPU, PIM_BUS, BatchSchedule
from repro.telemetry.report import (
    DPU_GROUP,
    WAIT,
    critical_path_attribution,
    utilization_report,
)


def serial_schedule() -> BatchSchedule:
    """host 0-1s, bus 1-2s, dpu/0 2-4s, dpu/1 2-3s (makespan 4)."""
    s = BatchSchedule()
    s.record_at(HOST_CPU, "filter", 0.0, 1.0)
    s.record_at(PIM_BUS, "transfer_in", 1.0, 1.0)
    s.record_at("dpu/0", "search", 2.0, 2.0)
    s.record_at("dpu/1", "search", 2.0, 1.0)
    return s


class TestUtilization:
    def test_busy_idle_and_utilization(self):
        report = utilization_report(serial_schedule())
        assert report.makespan_s == pytest.approx(4.0)
        host = report.resource(HOST_CPU)
        assert host.busy_s == pytest.approx(1.0)
        assert host.idle_s == pytest.approx(3.0)
        assert host.utilization == pytest.approx(0.25)

    def test_dpu_lanes_collapse(self):
        report = utilization_report(serial_schedule())
        dpus = report.resource(DPU_GROUP)
        assert dpus.n_lanes == 2
        assert dpus.n_spans == 2
        assert dpus.busy_s == pytest.approx(3.0)
        # 3 busy seconds over 2 lanes x 4 s window.
        assert dpus.utilization == pytest.approx(3.0 / 8.0)

    def test_no_collapse_keeps_lanes(self):
        report = utilization_report(serial_schedule(), collapse_dpus=False)
        assert report.resource("dpu/0").busy_s == pytest.approx(2.0)
        assert report.resource("dpu/1").busy_s == pytest.approx(1.0)

    def test_empty_schedule(self):
        report = utilization_report(BatchSchedule())
        assert report.makespan_s == 0.0
        assert report.resources == []
        assert report.critical_path == {}

    def test_unknown_resource_raises(self):
        with pytest.raises(KeyError):
            utilization_report(serial_schedule()).resource("gpu")


class TestCriticalPath:
    def test_serial_chain_fully_attributed(self):
        path = critical_path_attribution(serial_schedule())
        assert path == {
            HOST_CPU: pytest.approx(1.0),
            PIM_BUS: pytest.approx(1.0),
            DPU_GROUP: pytest.approx(2.0),
        }
        assert sum(path.values()) == pytest.approx(4.0)

    def test_gap_becomes_wait(self):
        s = BatchSchedule()
        s.record_at(HOST_CPU, "a", 0.0, 1.0)
        s.record_at(HOST_CPU, "b", 3.0, 1.0)  # 2 s uncovered gap
        path = critical_path_attribution(s)
        assert path[WAIT] == pytest.approx(2.0)
        assert path[HOST_CPU] == pytest.approx(2.0)

    def test_latest_starting_span_wins_overlaps(self):
        s = BatchSchedule()
        s.record_at(HOST_CPU, "long", 0.0, 4.0)
        s.record_at(PIM_BUS, "late", 3.0, 1.0)  # covers (3, 4] too
        path = critical_path_attribution(s)
        assert path[PIM_BUS] == pytest.approx(1.0)
        assert path[HOST_CPU] == pytest.approx(3.0)

    def test_attribution_covers_makespan(self):
        path = critical_path_attribution(serial_schedule())
        assert sum(path.values()) == pytest.approx(4.0)


def stream_works(n_batches=3, *, filter_s=1.0, tin_s=2.0, dpu_s=1.0):
    """Synthetic engine-shaped batches for the discrete-event core."""
    from repro.hardware.counters import StageCycles
    from repro.sim import (
        STAGE_AGGREGATE,
        STAGE_CLUSTER_FILTER,
        STAGE_TRANSFER_IN,
        STAGE_TRANSFER_OUT,
        BatchWork,
    )

    freq = 350e6
    works = []
    for b in range(n_batches):
        w = BatchWork(dpu_frequency_hz=freq, batch=b)
        host = w.work(HOST_CPU, STAGE_CLUSTER_FILTER, filter_s)
        tin = w.work(PIM_BUS, STAGE_TRANSFER_IN, tin_s, after=(host,))
        tail = w.work_dpu_stages(
            0, StageCycles(distance_calc=dpu_s * freq), after=(tin,)
        )
        tout = w.work(PIM_BUS, STAGE_TRANSFER_OUT, 0.5, after=(tail,))
        w.work(HOST_CPU, STAGE_AGGREGATE, 0.25, after=(tout,))
        works.append(w)
    return works


class TestEventStreamReport:
    """Satellite coverage: reports over ``execute_stream`` schedules."""

    def test_interleaved_double_buffer_fully_attributed(self):
        from repro.sim import execute_stream

        sched = execute_stream(stream_works(3), overlap="double_buffer")
        report = utilization_report(sched)
        assert sum(report.critical_path.values()) == pytest.approx(
            report.makespan_s
        )
        # The event core is work-conserving: an item dispatches the
        # instant its lane frees and its deps finish, so until the
        # stream drains some lane is always busy — interleaved batches
        # produce per-item queue waits (SpanTrace.wait_s, surfaced by
        # `repro.cli explain`), never a globally uncovered instant.
        assert WAIT not in report.critical_path

    def test_bus_contention_shows_in_utilization(self):
        from repro.sim import execute_stream

        sched = execute_stream(stream_works(3), overlap="double_buffer")
        report = utilization_report(sched)
        bus = report.resource(PIM_BUS)
        assert bus.busy_s == pytest.approx(3 * 2.0 + 3 * 0.5)
        assert bus.busy_s + bus.idle_s == pytest.approx(report.makespan_s)
        # Aggregation moved to its own lane under double_buffer.
        assert report.resource("host_agg").busy_s == pytest.approx(3 * 0.25)

    def test_kill_truncated_stream_still_sums(self):
        from repro.sim import execute_stream

        sched = execute_stream(
            stream_works(3, dpu_s=10.0),
            overlap="double_buffer",
            kills={"dpu/0": 1},
        )
        report = utilization_report(sched)
        assert sum(report.critical_path.values()) == pytest.approx(
            report.makespan_s
        )
        assert WAIT not in report.critical_path

    def test_stalled_intake_between_waves_becomes_wait(self):
        # A second wave arriving after the stream drains (e.g. an idle
        # service between bursts) is the one way an event-core timeline
        # legitimately goes globally idle — the report must attribute
        # the hole to (wait), not smear it over resources.
        from repro.sim import execute_stream

        sched = execute_stream(stream_works(2), overlap="double_buffer")
        drained = sched.makespan
        sched.record_at(HOST_CPU, "cluster_filter", drained + 1.5, 1.0)
        report = utilization_report(sched)
        assert report.critical_path[WAIT] == pytest.approx(1.5)
        assert sum(report.critical_path.values()) == pytest.approx(
            report.makespan_s
        )


class TestRendering:
    def test_to_json_matches_schema_expectations(self):
        payload = utilization_report(serial_schedule()).to_json()
        assert set(payload) == {"makespan_s", "resources", "critical_path"}
        assert {r["resource"] for r in payload["resources"]} == {
            HOST_CPU,
            PIM_BUS,
            DPU_GROUP,
        }

    def test_render_text_mentions_resources_and_path(self):
        text = utilization_report(serial_schedule()).render_text()
        assert "resource" in text
        assert DPU_GROUP in text
        assert "critical path:" in text
