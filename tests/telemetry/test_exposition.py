"""Prometheus text + JSON snapshot exposition and their validators."""

import json

import pytest

from repro.telemetry.exposition import (
    SNAPSHOT_SCHEMA,
    prometheus_text,
    snapshot,
    validate_prometheus_text,
    validate_snapshot,
)
from repro.telemetry.registry import MetricsRegistry


@pytest.fixture()
def reg():
    r = MetricsRegistry()
    r.counter("repro_queries_total", "queries", ("engine",)).labels(
        engine="upanns"
    ).inc(42)
    r.gauge("repro_depth", "queue depth").set(3)
    h = r.histogram("repro_sizes", "sizes", buckets=(1.0, 8.0))
    h.observe(0.5)
    h.observe(100.0)
    return r


class TestPrometheusText:
    def test_round_trips_validator(self, reg):
        text = prometheus_text(reg)
        assert validate_prometheus_text(text) == []

    def test_contains_headers_and_samples(self, reg):
        text = prometheus_text(reg)
        assert "# HELP repro_queries_total queries" in text
        assert "# TYPE repro_queries_total counter" in text
        assert 'repro_queries_total{engine="upanns"} 42' in text

    def test_histogram_expansion(self, reg):
        text = prometheus_text(reg)
        assert 'repro_sizes_bucket{le="1"} 1' in text
        assert 'repro_sizes_bucket{le="8"} 1' in text
        assert 'repro_sizes_bucket{le="+Inf"} 2' in text
        assert "repro_sizes_sum 100.5" in text
        assert "repro_sizes_count 2" in text

    def test_empty_registry_is_valid(self):
        assert prometheus_text(MetricsRegistry()) == ""
        assert validate_prometheus_text("") == []

    def test_validator_catches_undeclared_sample(self):
        errors = validate_prometheus_text("repro_mystery 1\n")
        assert any("no TYPE declaration" in e for e in errors)

    def test_validator_catches_missing_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 1\n'
            "repro_h_sum 1\n"
            "repro_h_count 1\n"
        )
        errors = validate_prometheus_text(text)
        assert any("+Inf" in e for e in errors)

    def test_validator_catches_decreasing_cumulative(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="2"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
        )
        errors = validate_prometheus_text(text)
        assert any("decreases" in e for e in errors)

    def test_validator_catches_suffix_on_counter(self):
        text = "# TYPE repro_c counter\nrepro_c_sum 1\n"
        errors = validate_prometheus_text(text)
        assert errors


class TestSnapshot:
    def test_round_trips_validator_and_json(self, reg):
        payload = snapshot(reg)
        assert validate_snapshot(payload) == []
        assert validate_snapshot(json.loads(json.dumps(payload))) == []

    def test_schema_version(self, reg):
        assert snapshot(reg)["schema"] == SNAPSHOT_SCHEMA

    def test_validator_catches_bad_schema(self, reg):
        payload = snapshot(reg)
        payload["schema"] = "nope/v0"
        assert any("schema" in e for e in validate_snapshot(payload))

    def test_validator_catches_duplicate_names(self, reg):
        payload = snapshot(reg)
        payload["metrics"].append(dict(payload["metrics"][0]))
        assert any("duplicate" in e for e in validate_snapshot(payload))

    def test_validator_catches_nonmonotone_buckets(self, reg):
        payload = snapshot(reg)
        hist = next(m for m in payload["metrics"] if m["type"] == "histogram")
        hist["samples"][0]["buckets"] = [[1.0, 5], [8.0, 3]]
        assert any("decrease" in e for e in validate_snapshot(payload))

    def test_non_object_rejected(self):
        assert validate_snapshot([]) == ["snapshot must be a JSON object"]


class TestExemplarExposition:
    @pytest.fixture()
    def exemplar_reg(self):
        r = MetricsRegistry()
        h = r.histogram("repro_lat", "latency", buckets=(1.0, 8.0))
        h.observe(0.5, exemplar="q000001")
        h.observe(100.0, exemplar="q000042")
        return r

    def test_snapshot_carries_exemplars(self, exemplar_reg):
        payload = snapshot(exemplar_reg)
        assert validate_snapshot(payload) == []
        (family,) = payload["metrics"]
        (sample,) = family["samples"]
        assert sample["exemplars"] == [
            {"le": 1.0, "value": 0.5, "trace_id": "q000001"},
            {"le": "+Inf", "value": 100.0, "trace_id": "q000042"},
        ]

    def test_text_format_has_no_exemplar_syntax(self, exemplar_reg):
        # Classic Prometheus 0.0.4 text has no exemplar clause; they
        # ride only in the JSON snapshot.
        text = prometheus_text(exemplar_reg)
        assert validate_prometheus_text(text) == []
        assert "q000042" not in text

    def test_validator_catches_bad_exemplar(self, exemplar_reg):
        payload = snapshot(exemplar_reg)
        payload["metrics"][0]["samples"][0]["exemplars"][0]["trace_id"] = ""
        assert validate_snapshot(payload)
