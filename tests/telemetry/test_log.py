"""Structured logger formatting, levels and CLI verbosity mapping."""

import io

from repro.telemetry.log import (
    DEBUG,
    INFO,
    WARNING,
    StructuredLogger,
    configure,
    get_logger,
)


def lines_of(logger_calls) -> list[str]:
    stream = io.StringIO()
    log = StructuredLogger(stream=stream)
    logger_calls(log)
    return stream.getvalue().splitlines()


class TestFormatting:
    def test_event_and_fields(self):
        out = lines_of(lambda log: log.info("build.done", n=3, qps=1234.5))
        assert out == ["repro info build.done n=3 qps=1234.5"]

    def test_strings_with_spaces_are_quoted(self):
        out = lines_of(lambda log: log.warning("oops", msg="two words"))
        assert out == ['repro warning oops msg="two words"']

    def test_no_timestamps_anywhere(self):
        out = lines_of(lambda log: log.info("tick"))
        assert ":" not in out[0].replace("repro info tick", "")


class TestLevels:
    def test_debug_suppressed_at_info(self):
        stream = io.StringIO()
        log = StructuredLogger(level=INFO, stream=stream)
        log.debug("hidden")
        log.info("shown")
        assert stream.getvalue() == "repro info shown\n"
        assert log.emitted == 1

    def test_warning_level_drops_info(self):
        stream = io.StringIO()
        log = StructuredLogger(level=WARNING, stream=stream)
        log.info("hidden")
        log.error("shown", code=2)
        assert stream.getvalue() == "repro error shown code=2\n"


class TestConfigure:
    def test_verbosity_mapping(self):
        log = get_logger()
        before = (log.level, log.stream)
        try:
            assert configure(-1).level == WARNING
            assert configure(0).level == INFO
            assert configure(2).level == DEBUG
        finally:
            log.level, log.stream = before

    def test_configure_mutates_singleton(self):
        log = get_logger()
        before = (log.level, log.stream)
        try:
            stream = io.StringIO()
            configure(1, stream=stream)
            get_logger().debug("visible")
            assert "repro debug visible" in stream.getvalue()
        finally:
            log.level, log.stream = before
