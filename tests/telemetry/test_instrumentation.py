"""End-to-end: serving batches populates the metrics registry.

Each test swaps in a fresh registry, drives real pipeline code (engine,
service, multi-host coordinator), and asserts the instrumented hot paths
reported what the modeled run actually did.  The golden-timing tests in
``tests/sim`` are the other half of the contract: instrumentation must
never change modeled time.
"""

import numpy as np
import pytest

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import UpANNSEngine
from repro.core.multihost import MultiHostEngine
from repro.core.service import OnlineService
from repro.hardware.mram import MAX_DMA_BYTES
from repro.hardware.specs import PimSystemSpec
from repro.telemetry.registry import MetricsRegistry, set_registry


@pytest.fixture()
def registry():
    mine = MetricsRegistry()
    previous = set_registry(mine)
    yield mine
    set_registry(previous)


def tiny_config(batch_size=40):
    return SystemConfig(
        index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=4),
        query=QueryConfig(nprobe=8, k=5, batch_size=batch_size),
        upanns=UpANNSConfig(),
        pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
    )


@pytest.fixture()
def engine(small_dataset, trained_index, history_queries):
    eng = UpANNSEngine(tiny_config())
    eng.build(
        small_dataset.vectors,
        history_queries=history_queries,
        prebuilt_index=trained_index,
    )
    return eng


class TestEngineBatch:
    def test_queries_and_batches_counted(self, registry, engine, small_queries):
        engine.search_batch(small_queries)
        fam = registry.get("repro_queries_total")
        assert fam.labels(engine="upanns").value == len(small_queries)
        assert registry.get("repro_batches_total").labels(engine="upanns").value == 1

    def test_stage_seconds_match_timing(self, registry, engine, small_queries):
        result = engine.search_batch(small_queries)
        fam = registry.get("repro_stage_seconds_total")
        total = sum(
            fam.labels(engine="upanns", stage=s).value
            for s in (
                "cluster_filter",
                "schedule",
                "transfer_in",
                "dpu",
                "transfer_out",
                "aggregate",
            )
        )
        assert total == pytest.approx(result.timing.total_s, rel=1e-9)

    def test_dpu_load_metrics(self, registry, engine, small_queries):
        engine.search_batch(small_queries)
        assert registry.get("repro_dpu_busy_cycles_total").labels().value > 0
        active = registry.get("repro_dpu_active").labels().value
        assert 1 <= active <= engine.pim.n_dpus
        assert registry.get("repro_dpu_tasklets").labels().value >= 1

    def test_batch_size_histogram(self, registry, engine, small_queries):
        engine.search_batch(small_queries)
        child = registry.get("repro_batch_size").labels(engine="upanns")
        assert child.count == 1
        assert child.sum == len(small_queries)


class TestDmaAndWram:
    def test_dma_bytes_and_transfer_sizes(self, registry, engine, small_queries):
        engine.search_batch(small_queries)
        read = registry.get("repro_mram_dma_bytes_total").labels(direction="read")
        assert read.value > 0
        hist = registry.get("repro_mram_dma_transfer_bytes").labels(direction="read")
        assert hist.count > 0
        # Every modeled DMA transaction respects the hardware ceiling, so
        # the last finite bucket must already hold every observation.
        assert hist.cumulative_buckets()[-1] == (float(MAX_DMA_BYTES), hist.count)
        assert hist.inf_count == 0

    def test_wram_peak_within_capacity(self, registry, engine, small_queries):
        engine.search_batch(small_queries)
        peak = registry.get("repro_wram_peak_bytes").labels().value
        assert 0 < peak <= engine.pim.dpus[0].spec.wram_bytes


class TestServiceMetrics:
    def test_batches_and_queue_depth(self, registry, engine, small_queries):
        service = OnlineService(engine)
        service.submit(small_queries)
        service.submit(small_queries)
        assert registry.get("repro_service_batches_total").labels().value == 2
        assert registry.get("repro_service_queue_depth").labels().value == 2


class TestMultiHostMetrics:
    def test_routing_and_network_counters(
        self, registry, small_dataset, trained_index, history_queries, small_queries
    ):
        engine = MultiHostEngine(host_configs=[tiny_config(), tiny_config()])
        engine.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=trained_index,
        )
        engine.search_batch(small_queries)
        assert (
            registry.get("repro_multihost_queries_total").labels().value
            == len(small_queries)
        )
        pairs = registry.get("repro_multihost_routed_pairs_total")
        routed = sum(child.value for child in pairs.children())
        assert routed >= len(small_queries)  # nprobe pairs per query
        net = registry.get("repro_multihost_network_bytes_total")
        assert net.labels(direction="distribute").value > 0
        assert net.labels(direction="gather").value > 0
        stages = registry.get("repro_stage_seconds_total")
        assert stages.labels(engine="multihost", stage="host_search").value > 0


class TestBatchedDmaObservation:
    """observe_dma_batch must leave the registry exactly where the
    per-stream observe_dma calls it replaces would."""

    def test_batch_flush_equals_per_stream_calls(self):
        from repro.telemetry.pipeline import (
            dma_observations,
            observe_dma,
            observe_dma_batch,
        )

        streams = [(3000, 2048), (512, 2048), (7, 8), (2048, 2048)]
        reg_single = MetricsRegistry()
        total = 0
        agg: dict[int, int] = {}
        for nbytes, chunk in streams:
            observe_dma("read", nbytes, chunk, registry=reg_single)
            total += nbytes
            for size, count in dma_observations(nbytes, chunk):
                agg[size] = agg.get(size, 0) + count
        reg_batch = MetricsRegistry()
        observe_dma_batch("read", total, agg, registry=reg_batch)
        assert reg_single.snapshot() == reg_batch.snapshot()

    def test_zero_bytes_is_a_noop(self):
        from repro.telemetry.pipeline import observe_dma_batch

        reg = MetricsRegistry()
        observe_dma_batch("write", 0, {})
        assert reg.snapshot()["metrics"] == []


class TestLaneTelemetry:
    """Queue-depth and occupancy series from the discrete-event core."""

    def stream(self):
        from repro.sim import EventEngine, execute_stream
        from tests.tracing.test_record import traced_work

        works = [
            traced_work(n_queries=4, start=4 * b, batch=b) for b in range(3)
        ]
        eng = EventEngine()
        sched = execute_stream(works, overlap="double_buffer", engine=eng)
        return eng, sched

    def test_lane_stats_become_gauges(self, registry):
        from repro.telemetry.pipeline import observe_lane_stats

        eng, sched = self.stream()
        observe_lane_stats(eng.lane_stats, schedule=sched)
        for resource, stats in eng.lane_stats.items():
            def val(name):
                return registry.gauge(name, "", ("resource",)).labels(
                    resource=resource
                ).value
            assert val("repro_lane_dispatched") == stats.dispatched
            assert val("repro_lane_queued") == stats.queued
            assert val("repro_lane_cancelled") == stats.cancelled
            assert val("repro_lane_peak_outstanding") == stats.peak_outstanding
        # Interleaved batches queue on the bus, and the peak shows it.
        bus = eng.lane_stats["pim_bus"]
        assert bus.peak_outstanding >= 2

    def test_occupancy_busy_plus_idle_is_makespan(self, registry):
        from repro.telemetry.pipeline import observe_lane_stats

        eng, sched = self.stream()
        observe_lane_stats(eng.lane_stats, schedule=sched)
        busy = registry.gauge("repro_lane_busy_seconds", "", ("resource",))
        idle = registry.gauge("repro_lane_idle_seconds", "", ("resource",))
        for resource, tl in sched.timelines.items():
            b = busy.labels(resource=resource).value
            i = idle.labels(resource=resource).value
            assert b == pytest.approx(sum(s.duration for s in tl.spans))
            assert b + i == pytest.approx(sched.makespan)

    def test_queue_wait_histogram_names_a_trace(self, registry):
        from repro.telemetry.pipeline import observe_lane_stats

        eng, sched = self.stream()
        observe_lane_stats(eng.lane_stats, schedule=sched)
        waits = registry.histogram(
            "repro_lane_queue_wait_seconds", "", ("resource",)
        )
        child = waits.labels(resource="pim_bus")
        assert child.count > 0
        # The exemplar is a real query of the stream, not a made-up tag.
        assert child.worst_exemplar() in {f"q{n:06d}" for n in range(12)}

    def test_worst_latency_exemplar_resolves_in_the_export(self, registry):
        # Acceptance: the worst latency bucket's exemplar trace id must
        # resolve to a query the exported trace record declares.
        from repro.telemetry.pipeline import observe_query_latencies
        from repro.tracing import make_trace_record, query_latencies, worst_query

        _, sched = self.stream()
        record = make_trace_record(name="x", config={}, schedule=sched)
        family = observe_query_latencies(query_latencies(sched))
        exemplar = family.labels().worst_exemplar()
        assert exemplar in {q["trace_id"] for q in record["queries"]}
        assert exemplar == worst_query(record)

    def test_event_mode_service_publishes_lane_series(
        self, registry, engine, small_queries
    ):
        # Satellite wiring: combined_schedule() in event mode exports
        # EventEngine.lane_stats without any caller-side plumbing.
        service = OnlineService(
            engine=engine, overlap="double_buffer", sim_engine="event"
        )
        for _ in range(2):
            service.submit(small_queries)
        service.combined_schedule()
        assert service.last_event_engine is not None
        names = {f.name for f in registry.families()}
        assert {
            "repro_lane_dispatched",
            "repro_lane_peak_outstanding",
            "repro_lane_busy_seconds",
            "repro_lane_outstanding",
            "repro_lane_queue_wait_seconds",
            "repro_query_latency_seconds",
        } <= names
        latency = registry.histogram("repro_query_latency_seconds", "")
        assert latency.labels().count == 2 * len(small_queries)
