"""Benchmark result records: construction, validation, CLI entry point."""

import json

import pytest

from repro.errors import ConfigError
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.exposition import snapshot
from repro.telemetry.schema import (
    CHAOS_SCHEMA,
    RESULT_SCHEMA,
    SERVE_SCHEMA,
    main,
    make_chaos_record,
    make_result_record,
    make_serve_record,
    validate_chaos_record,
    validate_result_record,
    validate_serve_record,
)


def valid_record() -> dict:
    reg = MetricsRegistry()
    reg.counter("repro_queries_total").inc(100)
    return make_result_record(
        name="fig_test",
        config={"sim_dpus": 64},
        qps_values=[100.0, 200.0],
        stage_seconds={"dpu": 0.5, "aggregate": 0.1},
        utilization={
            "makespan_s": 1.0,
            "resources": [
                {
                    "resource": "dpu/*",
                    "busy_s": 0.8,
                    "idle_s": 0.2,
                    "utilization": 0.8,
                    "n_spans": 4,
                    "n_lanes": 1,
                }
            ],
            "critical_path": {"dpu/*": 1.0},
        },
        metrics=snapshot(reg),
    )


class TestMakeRecord:
    def test_valid_record_passes(self):
        record = valid_record()
        assert record["schema"] == RESULT_SCHEMA
        assert validate_result_record(record) == []

    def test_qps_stats(self):
        qps = valid_record()["qps"]
        assert qps == {
            "mean": pytest.approx(150.0),
            "min": 100.0,
            "max": 200.0,
            "n_batches": 2,
        }

    def test_empty_qps_rejected(self):
        with pytest.raises(ConfigError):
            make_result_record(
                name="x",
                config={},
                qps_values=[],
                stage_seconds={},
                utilization={},
                metrics={},
            )

    def test_json_round_trip(self):
        record = json.loads(json.dumps(valid_record()))
        assert validate_result_record(record) == []


class TestValidator:
    def test_non_object(self):
        assert validate_result_record(42) == ["record must be a JSON object"]

    @pytest.mark.parametrize(
        "mutate, needle",
        [
            (lambda r: r.update(schema="v0"), "schema"),
            (lambda r: r.update(name=""), "name"),
            (lambda r: r.update(config=[1]), "config"),
            (lambda r: r["qps"].update(mean=-1), "qps.mean"),
            (lambda r: r["qps"].update(mean=500.0), "within"),
            (lambda r: r["stage_seconds"].update(dpu=-0.1), "stage_seconds"),
            (lambda r: r["utilization"].update(makespan_s=-1), "makespan_s"),
            (
                lambda r: r["utilization"]["resources"][0].update(utilization=1.5),
                "within [0, 1]",
            ),
            (
                lambda r: r["utilization"].update(critical_path=[1]),
                "critical_path",
            ),
            (lambda r: r.pop("metrics"), "metrics"),
            (lambda r: r["metrics"].update(schema="bad"), "metrics:"),
        ],
    )
    def test_each_field_is_checked(self, mutate, needle):
        record = valid_record()
        mutate(record)
        errors = validate_result_record(record)
        assert any(needle in e for e in errors), errors


def valid_chaos_record() -> dict:
    return make_chaos_record(
        name="chaos_test",
        config={"batches": 2, "n_dpus": 16},
        plan={"events": [{"kind": "dpu", "target": 5, "batch": 1}], "seed": 7},
        faults_injected=1,
        retries=2,
        rerouted_pairs=13,
        dropped_pairs=0,
        dead_units=[5],
        coverage_floor=1.0,
        recall_delta=0.0,
        retry_seconds=1e-4,
        recovery_batches=1,
        recovery_seconds=1.3e-4,
        batches=[
            {"batch": 0, "coverage_floor": 1.0, "rerouted_pairs": 0, "dropped_pairs": 0},
            {"batch": 1, "coverage_floor": 1.0, "rerouted_pairs": 13, "dropped_pairs": 0},
        ],
    )


class TestChaosRecord:
    def test_valid_record_passes(self):
        record = valid_chaos_record()
        assert record["schema"] == CHAOS_SCHEMA
        assert validate_chaos_record(record) == []

    def test_json_round_trip(self):
        record = json.loads(json.dumps(valid_chaos_record()))
        assert validate_chaos_record(record) == []

    def test_constructor_rejects_invalid(self):
        with pytest.raises(ConfigError):
            make_chaos_record(
                name="",
                config={},
                plan={},
                faults_injected=0,
                retries=0,
                rerouted_pairs=0,
                dropped_pairs=0,
                dead_units=[],
                coverage_floor=1.0,
                recall_delta=0.0,
                retry_seconds=0.0,
                recovery_batches=0,
                recovery_seconds=0.0,
                batches=[{"batch": 0, "coverage_floor": 1.0, "rerouted_pairs": 0, "dropped_pairs": 0}],
            )

    @pytest.mark.parametrize(
        "mutate, needle",
        [
            (lambda r: r.update(schema="repro.chaos/v0"), "schema"),
            (lambda r: r.update(name=""), "name"),
            (lambda r: r.update(plan=[1]), "plan"),
            (lambda r: r["faults"].update(retries=-1), "retries"),
            (lambda r: r["faults"].update(dead_units=[-3]), "dead_units"),
            (lambda r: r["degradation"].update(coverage_floor=1.5), "coverage_floor"),
            (lambda r: r["recovery"].update(batches=-1), "recovery.batches"),
            (lambda r: r.update(batches=[]), "batches"),
            (lambda r: r["batches"][0].pop("coverage_floor"), "coverage_floor"),
        ],
    )
    def test_each_field_is_checked(self, mutate, needle):
        record = valid_chaos_record()
        mutate(record)
        errors = validate_chaos_record(record)
        assert any(needle in e for e in errors), errors

    def test_cli_dispatch_recognizes_chaos(self, tmp_path):
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps(valid_chaos_record()))
        assert main([str(path)]) == 0


class TestCliEntryPoint:
    def test_valid_file_exits_zero(self, tmp_path):
        path = tmp_path / "record.json"
        path.write_text(json.dumps(valid_record()))
        assert main([str(path)]) == 0

    def test_invalid_file_exits_one(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope"}))
        assert main([str(path)]) == 1

    def test_unreadable_file_exits_two(self, tmp_path):
        assert main([str(tmp_path / "missing.json")]) == 2

    def test_no_arguments_is_usage_error(self):
        assert main([]) == 2

    def test_prom_mode(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("repro_x_total").inc()
        good = tmp_path / "good.prom"
        good.write_text(reg.prometheus_text())
        assert main(["--prom", str(good)]) == 0
        bad = tmp_path / "bad.prom"
        bad.write_text("repro_undeclared 1\n")
        assert main(["--prom", str(bad)]) == 1


def valid_serve_record() -> dict:
    tenant = {
        "tenant": "interactive",
        "offered": 100,
        "admitted": 80,
        "shed": 15,
        "timed_out": 5,
        "shed_by_reason": {"queue_full": 10, "predicted_wait": 5},
        "goodput_qps": 4000.0,
        "p50_ms": 1.0,
        "p95_ms": 2.0,
        "p99_ms": 3.0,
    }
    totals = {
        "offered": 100,
        "admitted": 80,
        "shed": 15,
        "timed_out": 5,
        "goodput_qps": 4000.0,
        "p50_ms": 1.0,
        "p95_ms": 2.0,
        "p99_ms": 3.0,
        "coverage_floor": 0.5,
        "batches": 7,
    }
    point = {
        "offered": 100,
        "admitted": 80,
        "shed": 15,
        "timed_out": 5,
        "offered_load": 2.0,
        "offered_qps": 5000.0,
        "goodput_qps": 4000.0,
        "p99_ms": 3.0,
        "coverage_floor": 0.5,
        "shedding": True,
    }
    return make_serve_record(
        name="serve_test",
        config={"seed": 0, "horizon_s": 0.2},
        totals=totals,
        tenants=[tenant],
        curve=[point],
    )


class TestServeRecord:
    def test_valid_record_passes(self):
        record = valid_serve_record()
        assert record["schema"] == SERVE_SCHEMA
        assert validate_serve_record(record) == []

    def test_maker_rejects_broken_conservation(self):
        record = valid_serve_record()
        totals = dict(record["totals"], admitted=81)
        with pytest.raises(ConfigError, match="offered"):
            make_serve_record(
                name="serve_test",
                config={},
                totals=totals,
                tenants=record["tenants"],
                curve=record["curve"],
            )

    def test_tenant_sums_must_match_totals(self):
        record = valid_serve_record()
        record["tenants"][0]["offered"] = 99
        record["tenants"][0]["admitted"] = 79
        errors = validate_serve_record(record)
        assert any("sum to" in e for e in errors)

    def test_shed_by_reason_must_sum_to_shed(self):
        record = valid_serve_record()
        record["tenants"][0]["shed_by_reason"]["queue_full"] = 11
        errors = validate_serve_record(record)
        assert any("shed_by_reason" in e for e in errors)

    def test_percentile_ordering_enforced(self):
        record = valid_serve_record()
        record["totals"]["p95_ms"] = 10.0
        errors = validate_serve_record(record)
        assert any("non-decreasing" in e for e in errors)

    def test_curve_point_checked(self):
        record = valid_serve_record()
        record["curve"][0]["shedding"] = "yes"
        record["curve"][0]["admitted"] = 81
        errors = validate_serve_record(record)
        assert any("shedding" in e for e in errors)
        assert any("curve[0]" in e and "offered" in e for e in errors)

    def test_coverage_floor_bounds(self):
        record = valid_serve_record()
        record["totals"]["coverage_floor"] = 1.5
        errors = validate_serve_record(record)
        assert any("coverage_floor" in e for e in errors)

    def test_tenants_required(self):
        record = valid_serve_record()
        record["tenants"] = []
        errors = validate_serve_record(record)
        assert any("tenants" in e for e in errors)

    def test_cli_entry_point_dispatches_serve(self, tmp_path):
        path = tmp_path / "serve.json"
        path.write_text(json.dumps(valid_serve_record()))
        assert main([str(path)]) == 0
        path.write_text(
            json.dumps(dict(valid_serve_record(), totals={"offered": 1}))
        )
        assert main([str(path)]) == 1
