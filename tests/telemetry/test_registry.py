"""MetricsRegistry / family / child behavior."""

import pytest

from repro.errors import ConfigError
from repro.telemetry.registry import (
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
    get_registry,
    reset_metrics,
    set_registry,
)


@pytest.fixture()
def reg():
    return MetricsRegistry()


class TestCounters:
    def test_inc_accumulates(self, reg):
        c = reg.counter("repro_test_total", "help")
        c.inc()
        c.inc(4)
        assert c._default_child().value == 5.0

    def test_negative_increment_rejected(self, reg):
        with pytest.raises(ConfigError):
            reg.counter("repro_test_total").inc(-1)

    def test_labeled_children_are_independent(self, reg):
        c = reg.counter("repro_reqs_total", "", ("engine",))
        c.labels(engine="a").inc(2)
        c.labels(engine="b").inc(3)
        assert c.labels(engine="a").value == 2.0
        assert c.labels(engine="b").value == 3.0

    def test_wrong_labels_rejected(self, reg):
        c = reg.counter("repro_reqs_total", "", ("engine",))
        with pytest.raises(ConfigError):
            c.labels(host="x")
        with pytest.raises(ConfigError):
            c.inc()  # labeled family has no default child


class TestGauges:
    def test_set_and_move(self, reg):
        g = reg.gauge("repro_depth")
        g.set(7)
        g.inc()
        g.dec(3)
        assert g._default_child().value == 5.0

    def test_set_max_is_high_water(self, reg):
        g = reg.gauge("repro_peak")
        g.set_max(10)
        g.set_max(4)
        assert g._default_child().value == 10.0


class TestHistograms:
    def test_bucketing(self, reg):
        h = reg.histogram("repro_sizes", buckets=(1.0, 2.0, 4.0))
        h.observe(1.0)  # le=1
        h.observe(1.5)  # le=2
        h.observe(9.0)  # +Inf
        child = h._default_child()
        assert child.cumulative_buckets() == [(1.0, 1), (2.0, 2), (4.0, 2)]
        assert child.count == 3
        assert child.sum == pytest.approx(11.5)

    def test_batched_observation(self, reg):
        h = reg.histogram("repro_dma", buckets=(8.0, 2048.0))
        h.observe(2048.0, count=1000)
        child = h._default_child()
        assert child.count == 1000
        assert child.sum == pytest.approx(2048.0 * 1000)
        assert child.cumulative_buckets()[-1] == (2048.0, 1000)

    def test_negative_count_rejected(self, reg):
        h = reg.histogram("repro_dma", buckets=(8.0,))
        with pytest.raises(ConfigError):
            h.observe(1.0, count=-1)

    def test_bad_buckets_rejected(self, reg):
        with pytest.raises(ConfigError):
            reg.histogram("repro_bad", buckets=())
        with pytest.raises(ConfigError):
            reg.histogram("repro_bad", buckets=(2.0, 1.0))

    def test_default_buckets_are_seconds_scale(self, reg):
        h = reg.histogram("repro_latency_seconds")
        assert h.buckets == DEFAULT_SECONDS_BUCKETS


class TestGetOrCreate:
    def test_same_call_returns_same_family(self, reg):
        assert reg.counter("repro_x_total") is reg.counter("repro_x_total")

    def test_type_mismatch_rejected(self, reg):
        reg.counter("repro_x_total")
        with pytest.raises(ConfigError):
            reg.gauge("repro_x_total")

    def test_labelname_mismatch_rejected(self, reg):
        reg.counter("repro_x_total", "", ("a",))
        with pytest.raises(ConfigError):
            reg.counter("repro_x_total", "", ("b",))

    def test_bucket_mismatch_rejected(self, reg):
        reg.histogram("repro_h", buckets=(1.0, 2.0))
        with pytest.raises(ConfigError):
            reg.histogram("repro_h", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self, reg):
        with pytest.raises(ConfigError):
            reg.counter("0bad")
        with pytest.raises(ConfigError):
            reg.counter("repro_x", "", ("le",))
        with pytest.raises(ConfigError):
            reg.counter("repro_x", "", ("a", "a"))

    def test_families_sorted_by_name(self, reg):
        reg.counter("repro_b_total")
        reg.counter("repro_a_total")
        assert [f.name for f in reg.families()] == [
            "repro_a_total",
            "repro_b_total",
        ]


class TestProcessRegistry:
    def test_set_registry_swaps_and_restores(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_reset_metrics_clears_in_place(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            get_registry().counter("repro_tmp_total").inc()
            reset_metrics()
            assert get_registry().families() == []
        finally:
            set_registry(previous)


class TestExemplars:
    def test_largest_value_per_bucket_wins(self, reg):
        h = reg.histogram("repro_lat", "latency", buckets=(1.0, 10.0))
        h.observe(0.5, exemplar="q000001")
        h.observe(0.9, exemplar="q000002")
        h.observe(0.2, exemplar="q000003")
        child = h.labels()
        assert child.exemplars[0] == (0.9, "q000002")

    def test_inf_bucket_holds_overflow_exemplar(self, reg):
        h = reg.histogram("repro_lat", "latency", buckets=(1.0, 10.0))
        h.observe(99.0, exemplar="q000042")
        # Index len(buckets) is the +Inf bucket.
        assert h.labels().exemplars[2] == (99.0, "q000042")

    def test_worst_exemplar_is_global_max(self, reg):
        h = reg.histogram("repro_lat", "latency", buckets=(1.0, 10.0))
        h.observe(0.5, exemplar="q000001")
        h.observe(5.0, exemplar="q000007")
        h.observe(0.9, exemplar="q000002")
        assert h.labels().worst_exemplar() == "q000007"

    def test_plain_observations_leave_no_exemplar(self, reg):
        h = reg.histogram("repro_lat", "latency", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(99.0, count=3)
        child = h.labels()
        assert child.exemplars == {}
        assert child.worst_exemplar() is None
        assert child.count == 4  # counting is unaffected

    def test_labelled_children_keep_separate_exemplars(self, reg):
        h = reg.histogram(
            "repro_lane_wait", "wait", ("resource",), buckets=(1.0,)
        )
        h.labels(resource="pim_bus").observe(0.5, exemplar="q000001")
        h.labels(resource="dpu/0").observe(0.7, exemplar="q000002")
        assert h.labels(resource="pim_bus").worst_exemplar() == "q000001"
        assert h.labels(resource="dpu/0").worst_exemplar() == "q000002"
