"""CPU baseline (Faiss-CPU-like) tests."""

import numpy as np
import pytest

from repro.baselines.cpu import CpuEngine
from repro.errors import NotTrainedError
from repro.ivfpq import IVFPQIndex


@pytest.fixture(scope="module")
def cpu(trained_index):
    return CpuEngine(trained_index, workload_scale=1000.0)


class TestFunctional:
    def test_results_match_reference(self, cpu, trained_index, small_queries):
        res = cpu.search_batch(small_queries, 5, 8)
        ref = trained_index.search(small_queries, 5, 8)
        np.testing.assert_array_equal(res.ids, ref.ids)

    def test_timing_only_mode(self, cpu, small_queries):
        fast = cpu.search_batch(small_queries, 5, 8, compute_results=False)
        full = cpu.search_batch(small_queries, 5, 8, compute_results=True)
        assert fast.total_seconds == pytest.approx(full.total_seconds)
        assert (fast.ids == -1).all()

    def test_untrained_rejected(self):
        with pytest.raises(NotTrainedError):
            CpuEngine(IVFPQIndex(8, 2, 2)).search_batch(
                np.zeros((1, 8), np.float32), 1, 1
            )


class TestTimingModel:
    def test_distance_stage_dominates_at_scale(self, cpu, small_queries):
        """Figure 19: CPU distance calculation ~99.5 % at billion scale."""
        res = cpu.search_batch(small_queries, 10, 8, compute_results=False)
        assert res.stage_seconds.fractions()["distance_calc"] > 0.9

    def test_lut_dominates_at_tiny_scale(self, trained_index, small_queries):
        """Figure 1: at small scale the bottleneck is LUT construction."""
        tiny = CpuEngine(trained_index, workload_scale=0.001)
        res = tiny.search_batch(small_queries, 10, 8, compute_results=False)
        frac = res.stage_seconds.fractions()
        assert frac["lut_construction"] > frac["distance_calc"]

    def test_time_scales_with_nprobe(self, cpu, small_queries):
        t8 = cpu.search_batch(small_queries, 5, 8, compute_results=False).total_seconds
        t16 = cpu.search_batch(small_queries, 5, 16, compute_results=False).total_seconds
        assert t16 > 1.5 * t8

    def test_time_scales_with_workload_scale(self, trained_index, small_queries):
        t1 = CpuEngine(trained_index, workload_scale=100.0).search_batch(
            small_queries, 5, 8, compute_results=False
        )
        t2 = CpuEngine(trained_index, workload_scale=1000.0).search_batch(
            small_queries, 5, 8, compute_results=False
        )
        assert t2.total_seconds > 5 * t1.total_seconds

    def test_qps_positive(self, cpu, small_queries):
        assert cpu.search_batch(small_queries, 5, 8, compute_results=False).qps > 0

    def test_memory_required(self, cpu, trained_index):
        assert cpu.memory_required_bytes() == pytest.approx(
            trained_index.ntotal * 1000.0 * (trained_index.m + 8)
        )

    def test_locality_penalty_for_small_clusters(self, small_dataset):
        """Paper section 5.2: smaller clusters hurt the CPU's cache-
        friendly streaming, so effective bandwidth drops."""
        few = IVFPQIndex(32, 4, 8)
        few.train(small_dataset.vectors, n_iter=4)
        few.add(small_dataset.vectors)
        many = IVFPQIndex(32, 64, 8)
        many.train(small_dataset.vectors, n_iter=4)
        many.add(small_dataset.vectors)
        q = small_dataset.vectors[:10]
        # Same fraction of the dataset scanned: nprobe proportional.
        t_few = CpuEngine(few, workload_scale=4000).search_batch(
            q, 5, 2, compute_results=False
        )
        t_many = CpuEngine(many, workload_scale=4000).search_batch(
            q, 5, 32, compute_results=False
        )
        few_rate = t_few.stage_seconds.distance_calc
        many_rate = t_many.stage_seconds.distance_calc
        # many-small-clusters must be no faster per scanned byte; compare
        # normalized by scanned volume.
        few_scanned = few.scanned_points(q, 2).sum()
        many_scanned = many.scanned_points(q, 32).sum()
        assert many_rate / many_scanned >= few_rate / few_scanned
