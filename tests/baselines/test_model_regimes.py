"""Regime tests for the baseline cost models: the Figure-1 scale
behaviour must come out of the model structure, not tuning per run."""

import pytest

from repro.baselines.cpu import CpuEngine
from repro.baselines.gpu import GpuEngine
from repro.metrics import dominant_stage


class TestCpuScaleRegimes:
    @pytest.fixture(scope="class")
    def queries(self, small_queries):
        return small_queries

    def test_cache_boost_vanishes_at_scale(self, trained_index, queries):
        """The LLC boost is a small-index effect only."""
        small = CpuEngine(trained_index, workload_scale=1.0)
        large = CpuEngine(trained_index, workload_scale=1e5)
        t_small = small.search_batch(queries, 10, 8, compute_results=False)
        t_large = large.search_batch(queries, 10, 8, compute_results=False)
        # Per scanned point, the large index is much slower (no cache).
        per_point_small = t_small.stage_seconds.distance_calc / 1.0
        per_point_large = t_large.stage_seconds.distance_calc / 1e5
        assert per_point_large > 3 * per_point_small

    def test_bottleneck_shift_is_monotone_in_scale(self, trained_index, queries):
        """Sweeping scale, the distance share must rise monotonically —
        no oscillation between regimes."""
        shares = []
        for scale in (1.0, 10.0, 100.0, 1e3, 1e4):
            eng = CpuEngine(trained_index, workload_scale=scale)
            res = eng.search_batch(queries, 10, 8, compute_results=False)
            shares.append(res.stage_seconds.fractions()["distance_calc"])
        assert all(b >= a - 1e-9 for a, b in zip(shares, shares[1:]))

    def test_filter_share_shrinks_with_nprobe(self, trained_index, queries):
        eng = CpuEngine(trained_index, workload_scale=100.0)
        f2 = eng.search_batch(queries, 10, 2, compute_results=False)
        f16 = eng.search_batch(queries, 10, 16, compute_results=False)
        assert (
            f16.stage_seconds.fractions()["cluster_filter"]
            <= f2.stage_seconds.fractions()["cluster_filter"]
        )


class TestGpuRegimes:
    def test_topk_dominates_at_any_large_scale(self, trained_index, small_queries):
        for scale in (1e3, 1e4, 1e5):
            eng = GpuEngine(trained_index, workload_scale=scale, memory_scale=1.0)
            res = eng.search_batch(small_queries, 10, 8, compute_results=False)
            assert dominant_stage(res.stage_seconds) == "topk_selection"

    def test_k_dependence_is_mild(self, trained_index, small_queries):
        """Figure 18: 10x more k costs well under 10x the time."""
        eng = GpuEngine(trained_index, workload_scale=1e4, memory_scale=1.0)
        t10 = eng.search_batch(small_queries, 10, 8, compute_results=False)
        t100 = eng.search_batch(small_queries, 100, 8, compute_results=False)
        assert t100.total_seconds < 4 * t10.total_seconds

    def test_memory_scale_decoupled_from_timing(self, trained_index, small_queries):
        """Timing must not change when only the capacity model's scale
        changes (memory is about residency, not per-query work)."""
        a = GpuEngine(trained_index, workload_scale=100.0, memory_scale=1.0)
        b = GpuEngine(trained_index, workload_scale=100.0, memory_scale=1000.0)
        ta = a.search_batch(small_queries, 10, 4, compute_results=False)
        tb = b.search_batch(small_queries, 10, 4, compute_results=False)
        assert ta.total_seconds == pytest.approx(tb.total_seconds)
