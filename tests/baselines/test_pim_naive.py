"""PIM-naive baseline construction tests."""

import numpy as np
import pytest

from repro.baselines.pim_naive import PIM_NAIVE_CONFIG, make_pim_naive
from repro.hardware.specs import PimSystemSpec


class TestConfig:
    def test_all_optimizations_disabled(self):
        assert not PIM_NAIVE_CONFIG.enable_placement
        assert not PIM_NAIVE_CONFIG.enable_cae
        assert not PIM_NAIVE_CONFIG.enable_topk_pruning

    def test_resource_management_retained(self):
        """Paper: PIM-naive keeps 'our PIM resource management strategy'
        (Opt2): multi-tasklet execution and tuned MRAM reads."""
        assert PIM_NAIVE_CONFIG.n_tasklets == 11
        assert PIM_NAIVE_CONFIG.mram_read_vectors == 16


class TestFactory:
    def test_engine_builds_and_searches(self, small_dataset, trained_index, small_queries):
        eng = make_pim_naive(
            32,
            n_clusters=32,
            m=8,
            nprobe=8,
            k=5,
            pim_spec=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
        )
        eng.build(small_dataset.vectors, prebuilt_index=trained_index)
        res = eng.search_batch(small_queries)
        ref = trained_index.search(small_queries, 5, 8)
        np.testing.assert_allclose(
            np.where(np.isfinite(res.distances), res.distances, -1),
            np.where(np.isfinite(ref.distances), ref.distances, -1),
            rtol=1e-4, atol=1e-4,
        )

    def test_no_replication(self, small_dataset, trained_index):
        eng = make_pim_naive(
            32, n_clusters=32, m=8, nprobe=8,
            pim_spec=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
        )
        eng.build(small_dataset.vectors, prebuilt_index=trained_index)
        assert eng.replication_factor() == pytest.approx(1.0)

    def test_no_cae(self, small_dataset, trained_index):
        eng = make_pim_naive(
            32, n_clusters=32, m=8, nprobe=8,
            pim_spec=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
        )
        eng.build(small_dataset.vectors, prebuilt_index=trained_index)
        assert eng.length_reduction_rate() == 0.0

    def test_no_pruning_stats(self, small_dataset, trained_index, small_queries):
        eng = make_pim_naive(
            32, n_clusters=32, m=8, nprobe=8, k=5,
            pim_spec=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
        )
        eng.build(small_dataset.vectors, prebuilt_index=trained_index)
        res = eng.search_batch(small_queries)
        assert res.heap_stats.pruned == 0
