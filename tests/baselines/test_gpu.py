"""GPU baseline (Faiss-GPU-like, A100 model) tests."""

import numpy as np
import pytest

from repro.baselines.gpu import GpuEngine
from repro.errors import DeviceOutOfMemoryError


@pytest.fixture(scope="module")
def gpu(trained_index):
    return GpuEngine(trained_index, workload_scale=1000.0)


class TestFunctional:
    def test_results_match_reference(self, gpu, trained_index, small_queries):
        res = gpu.search_batch(small_queries, 5, 8)
        ref = trained_index.search(small_queries, 5, 8)
        np.testing.assert_array_equal(res.ids, ref.ids)

    def test_timing_only_mode(self, gpu, small_queries):
        fast = gpu.search_batch(small_queries, 5, 8, compute_results=False)
        assert (fast.ids == -1).all()
        assert fast.total_seconds > 0


class TestTimingModel:
    def test_topk_dominates(self, gpu, small_queries):
        """Figure 19: GPU top-k consumes > 85 % of time at scale."""
        res = gpu.search_batch(small_queries, 10, 8, compute_results=False)
        assert res.stage_seconds.fractions()["topk_selection"] > 0.7

    def test_topk_share_grows_with_k(self, gpu, small_queries):
        """Figure 19: top-k ratio grows 76 % -> 89 % as k 10 -> 100."""
        f10 = gpu.search_batch(small_queries, 10, 8, compute_results=False)
        f100 = gpu.search_batch(small_queries, 100, 8, compute_results=False)
        assert (
            f100.stage_seconds.fractions()["topk_selection"]
            > f10.stage_seconds.fractions()["topk_selection"]
        )

    def test_qps_degrades_with_k(self, gpu, small_queries):
        """Figure 18: GPU QPS drops slightly as k grows."""
        q10 = gpu.search_batch(small_queries, 10, 8, compute_results=False).qps
        q100 = gpu.search_batch(small_queries, 100, 8, compute_results=False).qps
        assert q100 < q10
        assert q100 > q10 / 5  # 'slight', not collapse

    def test_gpu_faster_than_cpu_at_scale(self, trained_index, small_queries):
        """At billion-equivalent scale the GPU's bandwidth advantage
        beats the CPU even with its k-select overhead (Figure 10/12)."""
        from repro.baselines.cpu import CpuEngine

        cpu_t = CpuEngine(trained_index, workload_scale=2e4).search_batch(
            small_queries, 10, 8, compute_results=False
        )
        gpu_t = GpuEngine(trained_index, workload_scale=2e4).search_batch(
            small_queries, 10, 8, compute_results=False
        )
        assert gpu_t.total_seconds < cpu_t.total_seconds


class TestMemoryModel:
    def test_within_capacity_ok(self, gpu):
        gpu.check_memory(nprobe=8)

    def test_oom_raised_when_working_set_exceeds(self, trained_index, small_queries):
        """Reproduces the paper's DEEP1B blue-X markers (Figure 12)."""
        big = GpuEngine(trained_index, workload_scale=5e5)
        with pytest.raises(DeviceOutOfMemoryError):
            big.search_batch(small_queries, 10, 16)

    def test_required_bytes_grows_with_nprobe(self, gpu):
        assert gpu.required_bytes(32) > gpu.required_bytes(8)

    def test_rerank_storage_counts(self, trained_index):
        plain = GpuEngine(trained_index, workload_scale=1000.0)
        rerank = GpuEngine(
            trained_index, workload_scale=1000.0, rerank_bytes_per_vector=96
        )
        assert rerank.required_bytes(8) > plain.required_bytes(8)
