"""Opt3 re-encoding tests: the central invariant is that CAE never
changes a distance (paper: 'without compromising accuracy')."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cooccurrence import mine_combinations
from repro.core.encoding import (
    build_flat_table,
    decode_distances,
    encode_cluster,
    pack_device_rows,
    unpack_device_rows,
)
from repro.errors import ConfigError
from repro.ivfpq.adc import adc_distances


def random_case(n, m, seed, fraction=0.3, top_m=32):
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 256, size=(n, m)).astype(np.uint8)
    if m >= 3 and fraction > 0:
        triple = tuple(int(x) for x in rng.integers(0, 256, size=3))
        pos = int(rng.integers(0, m - 2))
        hit = rng.random(n) < fraction
        codes[hit, pos : pos + 3] = triple
    model = mine_combinations(codes, top_m=top_m, min_count=2)
    encoded = encode_cluster(codes, model)
    lut = rng.random((m, 256)).astype(np.float32)
    return codes, model, encoded, lut


class TestDistancePreservation:
    @given(
        n=st.integers(1, 60),
        m=st.sampled_from([4, 8, 16]),
        seed=st.integers(0, 10_000),
        fraction=st.floats(0.0, 0.9),
    )
    @settings(max_examples=60, deadline=None)
    def test_cae_distances_equal_plain_adc(self, n, m, seed, fraction):
        """Property: for any codes/mined combos/LUT, the re-encoded
        distance equals the plain ADC distance."""
        codes, model, encoded, lut = random_case(n, m, seed, fraction)
        table = build_flat_table(lut, model)
        cae = decode_distances(encoded, table)
        plain = adc_distances(codes, lut)
        np.testing.assert_allclose(cae, plain, rtol=1e-5, atol=1e-4)

    def test_real_cluster_distances_preserved(self, cluster_codes):
        rng = np.random.default_rng(0)
        m = cluster_codes.shape[1]
        model = mine_combinations(cluster_codes, top_m=256)
        encoded = encode_cluster(cluster_codes, model)
        lut = rng.random((m, 256)).astype(np.float32)
        table = build_flat_table(lut, model)
        np.testing.assert_allclose(
            decode_distances(encoded, table),
            adc_distances(cluster_codes, lut),
            rtol=1e-5,
            atol=1e-4,
        )


class TestLengthReduction:
    def test_planted_data_shrinks(self):
        codes, model, encoded, _ = random_case(300, 16, seed=1, fraction=0.6)
        assert encoded.length_reduction_rate() > 0.05

    def test_random_data_barely_shrinks(self):
        codes, model, encoded, _ = random_case(300, 16, seed=2, fraction=0.0)
        assert encoded.length_reduction_rate() < 0.05

    def test_paper_example_rate(self):
        """Figure 8: a 16-code vector with three disjoint triples packs
        to 12 tokens (the paper says the new length is at most 16; two
        full triples + one pair leaves 3x1 + 2 + 5 singles... our greedy
        replaces the two full triples it mined)."""
        m = 16
        base = np.arange(m, dtype=np.uint8)[None, :].repeat(50, axis=0)
        model = mine_combinations(base, top_m=16, min_count=2)
        encoded = encode_cluster(base, model)
        # Greedy replaces floor(16/3)=5 disjoint triples: 16 -> 6 tokens.
        assert int(encoded.lengths[0]) == 6

    def test_lengths_never_exceed_m(self):
        codes, model, encoded, _ = random_case(100, 8, seed=3)
        assert (encoded.lengths <= 8).all()
        assert (encoded.lengths >= 1).all()

    def test_nbytes_accounts_tokens(self):
        codes, model, encoded, _ = random_case(10, 8, seed=4)
        assert encoded.nbytes == 2 * int(encoded.lengths.sum()) + 2 * 10


class TestAddressLayout:
    def test_plain_addresses_are_premultiplied(self):
        """Original code c at position p -> 256*p + c (no runtime mul)."""
        codes = np.array([[3, 200, 77, 4]], dtype=np.uint8)
        model = mine_combinations(codes, top_m=1, min_count=5)  # no combos
        encoded = encode_cluster(codes, model)
        np.testing.assert_array_equal(
            encoded.addresses[0], [3, 256 + 200, 512 + 77, 768 + 4]
        )

    def test_combo_addresses_offset_past_lut(self):
        codes = np.tile(np.array([9, 8, 7, 1], dtype=np.uint8), (5, 1))
        model = mine_combinations(codes, top_m=2, min_count=2)
        encoded = encode_cluster(codes, model)
        combo_addr = encoded.addresses[0, 0]
        assert combo_addr >= 256 * 4

    def test_mismatched_model_rejected(self):
        codes = np.zeros((3, 8), dtype=np.uint8)
        model = mine_combinations(np.zeros((3, 4), dtype=np.uint8), top_m=1)
        with pytest.raises(ConfigError):
            encode_cluster(codes, model)

    def test_bad_table_size_rejected(self):
        codes, model, encoded, lut = random_case(5, 4, seed=5)
        with pytest.raises(ConfigError):
            decode_distances(encoded, np.zeros(3, dtype=np.float32))

    def test_empty_cluster(self):
        model = mine_combinations(np.empty((0, 8), dtype=np.uint8))
        encoded = encode_cluster(np.empty((0, 8), dtype=np.uint8), model)
        assert encoded.size == 0
        assert encoded.length_reduction_rate() == 0.0


class TestDeviceWireFormat:
    @given(n=st.integers(1, 40), seed=st.integers(0, 5000), fraction=st.floats(0, 1))
    @settings(max_examples=50, deadline=None)
    def test_pack_unpack_roundtrip(self, n, seed, fraction):
        """Property: the in-band second-digit length encoding of Figure 8
        round-trips for any mix of shortened and full-length rows."""
        codes, model, encoded, _ = random_case(n, 16, seed, fraction)
        rows = pack_device_rows(encoded)
        addresses, lengths = unpack_device_rows(rows, 16)
        np.testing.assert_array_equal(lengths, encoded.lengths)
        np.testing.assert_array_equal(addresses, encoded.addresses)

    def test_full_length_row_stored_verbatim(self):
        codes = np.array([[3, 200, 77, 4]], dtype=np.uint8)
        model = mine_combinations(codes, top_m=1, min_count=5)
        encoded = encode_cluster(codes, model)
        rows = pack_device_rows(encoded)
        assert rows[0].shape[0] == 4  # no in-band length needed

    def test_shortened_row_second_digit_is_length(self):
        codes = np.tile(np.arange(16, dtype=np.uint8), (4, 1))
        model = mine_combinations(codes, top_m=8, min_count=2)
        encoded = encode_cluster(codes, model)
        rows = pack_device_rows(encoded)
        assert int(rows[0][1]) == int(encoded.lengths[0])
        assert int(rows[0][1]) < 256  # distinguishable from addresses
