"""Opt4 top-k tests: heap correctness and pruning equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.topk import (
    BoundedMaxHeap,
    merge_heaps_naive,
    merge_heaps_pruned,
    scan_topk_fast,
    scan_topk_fast_batch,
    scan_topk_fast_batch_flat,
    scan_topk_threaded,
)
from repro.errors import ConfigError


def exact_topk(values, ids, k):
    order = np.argsort(values, kind="stable")[:k]
    return values[order], ids[order]


class TestBoundedMaxHeap:
    def test_retains_k_smallest(self):
        rng = np.random.default_rng(0)
        v = rng.random(100).astype(np.float32)
        h = BoundedMaxHeap(10)
        h.push_many(v, np.arange(100))
        got_v, _ = h.sorted_ascending()
        np.testing.assert_allclose(np.sort(got_v), np.sort(v)[:10])

    def test_root_is_kth_best(self):
        h = BoundedMaxHeap(3)
        for i, v in enumerate([5.0, 1.0, 3.0, 2.0]):
            h.push(v, i)
        assert h.root == pytest.approx(3.0)

    def test_root_inf_until_full(self):
        h = BoundedMaxHeap(3)
        h.push(1.0, 0)
        assert h.root == float("inf")

    def test_rejects_worse_candidates(self):
        h = BoundedMaxHeap(2)
        h.push(1.0, 0)
        h.push(2.0, 1)
        assert not h.push(3.0, 2)
        assert h.push(0.5, 3)

    def test_heap_invariant_maintained(self):
        rng = np.random.default_rng(1)
        h = BoundedMaxHeap(16)
        h.push_many(rng.random(200).astype(np.float32), np.arange(200))
        v = h.values[: h.size]
        for i in range(h.size):
            left, right = 2 * i + 1, 2 * i + 2
            if left < h.size:
                assert v[i] >= v[left]
            if right < h.size:
                assert v[i] >= v[right]

    def test_comparison_counting(self):
        h = BoundedMaxHeap(4)
        h.push_many(np.arange(50, dtype=np.float32), np.arange(50))
        assert h.stats.comparisons > 0
        assert h.stats.insertions >= 4

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            BoundedMaxHeap(0)

    def test_ids_follow_values(self):
        v = np.array([4.0, 2.0, 3.0, 1.0], dtype=np.float32)
        h = BoundedMaxHeap(2)
        h.push_many(v, np.array([40, 20, 30, 10]))
        got_v, got_i = h.sorted_ascending()
        np.testing.assert_array_equal(got_i, [10, 20])


class TestMerge:
    def _make_heaps(self, seed, t=4, n=120, k=6):
        rng = np.random.default_rng(seed)
        v = rng.random(n).astype(np.float32)
        ids = np.arange(n)
        heaps = []
        for i in range(t):
            h = BoundedMaxHeap(k)
            h.push_many(v[i::t], ids[i::t])
            heaps.append(h)
        return heaps, v, ids, k

    def test_pruned_equals_naive_results(self):
        for seed in range(5):
            heaps_a, v, ids, k = self._make_heaps(seed)
            heaps_b, *_ = self._make_heaps(seed)
            pv, pi, _ = merge_heaps_pruned(heaps_a, k)
            nv, ni, _ = merge_heaps_naive(heaps_b, k)
            np.testing.assert_allclose(pv, nv)
            np.testing.assert_array_equal(pi, ni)

    def test_merge_equals_exact(self):
        heaps, v, ids, k = self._make_heaps(7)
        pv, pi, _ = merge_heaps_pruned(heaps, k)
        ev, ei = exact_topk(v, ids, k)
        np.testing.assert_allclose(pv, ev)

    def test_pruning_skips_work(self):
        """Figure 9/15: pruning skips a large share of insertions."""
        heaps_a, _, _, k = self._make_heaps(3, t=8, n=800, k=10)
        heaps_b, *_ = self._make_heaps(3, t=8, n=800, k=10)
        _, _, pruned_stats = merge_heaps_pruned(heaps_a, k)
        assert pruned_stats.pruned > 0

    def test_empty_heaps(self):
        heaps = [BoundedMaxHeap(5) for _ in range(3)]
        v, i, _ = merge_heaps_pruned(heaps, 5)
        assert v.size == 0


class TestScanTopk:
    @given(
        n=st.integers(1, 300),
        k=st.integers(1, 20),
        t=st.integers(1, 16),
        seed=st.integers(0, 2000),
        prune=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_threaded_scan_equals_exact(self, n, k, t, seed, prune):
        """Property: thread-striped scan + (pruned) merge == exact top-k,
        for any stripe count, k and input."""
        rng = np.random.default_rng(seed)
        v = rng.random(n).astype(np.float32)
        ids = rng.permutation(n).astype(np.int64)
        got_v, got_i, _ = scan_topk_threaded(v, ids, k, t, prune=prune)
        ev, ei = exact_topk(v, ids, min(k, n))
        np.testing.assert_allclose(got_v, ev)
        np.testing.assert_array_equal(got_i, ei)

    @given(
        n=st.integers(1, 500),
        k=st.integers(1, 20),
        t=st.integers(1, 16),
        seed=st.integers(0, 2000),
        prune=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_fast_scan_equals_exact(self, n, k, t, seed, prune):
        """Property: the vectorized fast path is result-identical."""
        rng = np.random.default_rng(seed)
        v = rng.random(n).astype(np.float32)
        ids = rng.permutation(n).astype(np.int64)
        got_v, got_i, _ = scan_topk_fast(v, ids, k, t, prune=prune)
        ev, ei = exact_topk(v, ids, min(k, n))
        np.testing.assert_allclose(got_v, ev)
        np.testing.assert_array_equal(got_i, ei)

    def test_fast_pruning_stats_positive(self):
        rng = np.random.default_rng(0)
        v = rng.random(2000).astype(np.float32)
        _, _, stats = scan_topk_fast(v, np.arange(2000), 10, 11, prune=True)
        assert stats.pruned > 0

    def test_pruned_does_less_merge_work_than_naive(self):
        """The paper reports 68 % of comparisons skipped; directionally,
        pruning must reduce total comparisons."""
        rng = np.random.default_rng(1)
        v = rng.random(5000).astype(np.float32)
        ids = np.arange(5000)
        _, _, pruned = scan_topk_fast(v, ids, 50, 11, prune=True)
        _, _, naive = scan_topk_fast(v, ids, 50, 11, prune=False)
        assert pruned.comparisons < naive.comparisons

    def test_invalid_tasklets(self):
        with pytest.raises(ConfigError):
            scan_topk_fast(np.ones(3, np.float32), np.arange(3), 1, 0)


def stats_tuple(s):
    return (s.comparisons, s.insertions, s.pruned, s.merge_comparisons)


class TestScanTopkBatch:
    """The grouped kernel's batched selection must match per-group calls
    exactly — results and the work statistics that feed charged cycles."""

    def assert_batch_matches_pergroup(self, values_list, ids_list, k, t, prune=True):
        batched = scan_topk_fast_batch(values_list, ids_list, k, t, prune=prune)
        assert len(batched) == len(values_list)
        for (bv, bi, bs), v, ids in zip(batched, values_list, ids_list):
            gv, gi, gs = scan_topk_fast(v, ids, k, t, prune=prune)
            np.testing.assert_array_equal(bv, gv)
            np.testing.assert_array_equal(bi, gi)
            assert stats_tuple(bs) == stats_tuple(gs)

    @given(
        n_groups=st.integers(1, 12),
        k=st.integers(1, 16),
        t=st.integers(1, 16),
        seed=st.integers(0, 2000),
        prune=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_equals_per_group(self, n_groups, k, t, seed, prune):
        rng = np.random.default_rng(seed)
        values_list, ids_list = [], []
        for _ in range(n_groups):
            n = int(rng.integers(0, 120))
            values_list.append(rng.random(n).astype(np.float32))
            ids_list.append(rng.permutation(n).astype(np.int64))
        self.assert_batch_matches_pergroup(values_list, ids_list, k, t, prune)

    def test_k_exceeds_total_candidates(self):
        """k larger than any group's candidate count returns everything,
        sorted, with no padding artifacts."""
        rng = np.random.default_rng(2)
        values_list = [rng.random(n).astype(np.float32) for n in (3, 1, 7)]
        ids_list = [np.arange(v.shape[0], dtype=np.int64) for v in values_list]
        self.assert_batch_matches_pergroup(values_list, ids_list, 50, 11)
        batched = scan_topk_fast_batch(values_list, ids_list, 50, 11)
        for (bv, bi, _), v in zip(batched, values_list):
            assert bv.shape[0] == v.shape[0]
            np.testing.assert_array_equal(bv, np.sort(v))

    def test_duplicate_ids_across_replicas(self):
        """The same vector id appearing twice (replicated cluster) is
        kept twice — selection is by scan position, not id identity."""
        v = np.array([0.5, 0.1, 0.5, 0.1], dtype=np.float32)
        ids = np.array([7, 3, 7, 3], dtype=np.int64)
        self.assert_batch_matches_pergroup([v], [ids], 3, 4)
        (bv, bi, _), = scan_topk_fast_batch([v], [ids], 3, 4)
        np.testing.assert_array_equal(bi, [3, 3, 7])
        np.testing.assert_array_equal(bv, np.array([0.1, 0.1, 0.5], np.float32))

    def test_all_equal_distances_tiebreak_by_position(self):
        """Equal values select by earliest scan position, for any stripe
        count — the uniquely defined stable order."""
        for t in (1, 3, 11):
            v = np.full(20, 0.25, dtype=np.float32)
            ids = np.arange(100, 120, dtype=np.int64)
            self.assert_batch_matches_pergroup([v], [ids], 5, t)
            (bv, bi, _), = scan_topk_fast_batch([v], [ids], 5, t)
            np.testing.assert_array_equal(bi, ids[:5])

    def test_empty_groups_and_empty_list(self):
        empty_v = np.empty(0, dtype=np.float32)
        empty_i = np.empty(0, dtype=np.int64)
        self.assert_batch_matches_pergroup(
            [empty_v, np.array([0.5], np.float32)], [empty_i, np.array([9])], 4, 3
        )
        assert scan_topk_fast_batch([], [], 4, 3) == []
        (bv, bi, bs), = scan_topk_fast_batch([empty_v], [empty_i], 4, 3)
        assert bv.shape == (0,) and bi.shape == (0,)
        assert stats_tuple(bs) == (0, 0, 0, 0)

    def test_flat_form_matches_list_form(self):
        rng = np.random.default_rng(5)
        values_list = [rng.random(n).astype(np.float32) for n in (30, 0, 11, 64)]
        ids_list = [np.arange(v.shape[0], dtype=np.int64) for v in values_list]
        flat_v = np.concatenate(values_list)
        flat_i = np.concatenate(ids_list)
        n_arr = np.array([v.shape[0] for v in values_list], dtype=np.int64)
        from_list = scan_topk_fast_batch(values_list, ids_list, 6, 7)
        from_flat = scan_topk_fast_batch_flat(flat_v, flat_i, n_arr, 6, 7)
        for (lv, li, ls), (fv, fi, fs) in zip(from_list, from_flat):
            np.testing.assert_array_equal(lv, fv)
            np.testing.assert_array_equal(li, fi)
            assert stats_tuple(ls) == stats_tuple(fs)

    def test_invalid_tasklets(self):
        with pytest.raises(ConfigError):
            scan_topk_fast_batch([np.ones(3, np.float32)], [np.arange(3)], 1, 0)
