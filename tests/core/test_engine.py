"""UpANNS engine tests: end-to-end correctness and accounting."""

import numpy as np
import pytest

from repro.baselines.pim_naive import PIM_NAIVE_CONFIG
from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import UpANNSEngine
from repro.errors import ConfigError, NotTrainedError
from repro.hardware.specs import PimSystemSpec


def make_config(upanns=None, nprobe=8, k=5, n_dpus=16, timing_scale=1.0):
    pim = PimSystemSpec(n_dimms=1, chips_per_dimm=n_dpus // 8 or 1, dpus_per_chip=8)
    return SystemConfig(
        index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=6),
        query=QueryConfig(nprobe=nprobe, k=k, batch_size=40),
        upanns=upanns if upanns is not None else UpANNSConfig(),
        pim=pim,
        timing_scale=timing_scale,
    )


@pytest.fixture(scope="module")
def built_engine(small_dataset, trained_index, history_queries):
    eng = UpANNSEngine(make_config())
    eng.build(
        small_dataset.vectors,
        history_queries=history_queries,
        prebuilt_index=trained_index,
    )
    return eng


class TestLifecycle:
    def test_search_before_build_raises(self):
        eng = UpANNSEngine(make_config())
        with pytest.raises(NotTrainedError):
            eng.search_batch(np.zeros((2, 32), np.float32))

    def test_refresh_before_build_raises(self):
        with pytest.raises(NotTrainedError):
            UpANNSEngine(make_config()).refresh_placement()

    def test_prebuilt_geometry_checked(self, small_dataset, trained_index):
        cfg = SystemConfig(
            index=IndexConfig(dim=32, n_clusters=16, m=8, train_iters=2),
            pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
        )
        eng = UpANNSEngine(cfg)
        with pytest.raises(ConfigError):
            eng.build(small_dataset.vectors, prebuilt_index=trained_index)

    def test_build_from_scratch(self, small_dataset):
        eng = UpANNSEngine(make_config())
        eng.build(small_dataset.vectors)
        assert eng.index.ntotal == small_dataset.n


class TestFunctionalExactness:
    @pytest.mark.parametrize(
        "upanns",
        [UpANNSConfig(), PIM_NAIVE_CONFIG, UpANNSConfig(enable_cae=False)],
        ids=["upanns", "pim-naive", "no-cae"],
    )
    def test_engine_matches_reference_index(
        self, small_dataset, trained_index, history_queries, small_queries, upanns
    ):
        """The paper: 'the optimizations in UpANNS do not impact the
        accuracy' — every engine variant returns the reference results."""
        eng = UpANNSEngine(make_config(upanns=upanns))
        eng.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=trained_index,
        )
        res = eng.search_batch(small_queries)
        ref = trained_index.search(small_queries, 5, 8)
        np.testing.assert_allclose(
            np.where(np.isfinite(res.distances), res.distances, -1),
            np.where(np.isfinite(ref.distances), ref.distances, -1),
            rtol=1e-4,
            atol=1e-4,
        )

    def test_k_override(self, built_engine, small_queries):
        res = built_engine.search_batch(small_queries, k=3)
        assert res.ids.shape == (len(small_queries), 3)

    def test_deterministic(self, built_engine, small_queries):
        a = built_engine.search_batch(small_queries)
        b = built_engine.search_batch(small_queries)
        np.testing.assert_array_equal(a.ids, b.ids)


class TestAccounting:
    def test_timing_components_positive(self, built_engine, small_queries):
        res = built_engine.search_batch(small_queries)
        t = res.timing
        assert t.host_filter_s > 0
        assert t.dpu_makespan_s > 0
        assert t.total_s == pytest.approx(
            t.host_filter_s
            + t.host_schedule_s
            + t.transfer_in_s
            + t.dpu_makespan_s
            + t.transfer_out_s
            + t.host_aggregate_s
        )

    def test_qps_consistent_with_total(self, built_engine, small_queries):
        res = built_engine.search_batch(small_queries)
        assert res.qps == pytest.approx(len(small_queries) / res.timing.total_s)

    def test_stage_seconds_sum_close_to_makespan(self, built_engine, small_queries):
        res = built_engine.search_batch(small_queries)
        dpu_stage_total = (
            res.stage_seconds.lut_construction
            + res.stage_seconds.distance_calc
            + res.stage_seconds.topk_selection
        )
        assert dpu_stage_total == pytest.approx(res.timing.dpu_makespan_s, rel=0.01)

    def test_heap_stats_collected(self, built_engine, small_queries):
        res = built_engine.search_batch(small_queries)
        assert res.heap_stats.comparisons > 0

    def test_trace_records_batches(self, small_dataset, trained_index, small_queries):
        eng = UpANNSEngine(make_config())
        eng.build(small_dataset.vectors, prebuilt_index=trained_index)
        before = eng.trace.total_observations
        eng.search_batch(small_queries)
        assert eng.trace.total_observations == before + small_queries.shape[0] * 8

    def test_mram_accounting(self, built_engine):
        used = built_engine.pim.total_mram_used()
        payload_bytes = sum(
            p.nbytes * len(built_engine.placement.replicas[c])
            for c, p in enumerate(built_engine._payloads)
            if p.size > 0
        )
        assert used == payload_bytes

    def test_timing_scale_slows_batch(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        slow = UpANNSEngine(make_config(timing_scale=1000.0))
        slow.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=trained_index,
        )
        fast = UpANNSEngine(make_config(timing_scale=1.0))
        fast.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=trained_index,
        )
        assert (
            slow.search_batch(small_queries).timing.dpu_makespan_s
            > 10 * fast.search_batch(small_queries).timing.dpu_makespan_s
        )  # per-pair fixed LUT costs dilute the ratio below 1000x


class TestOptimizationEffects:
    def test_placement_beats_naive_balance(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        smart = UpANNSEngine(make_config())
        smart.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=trained_index,
        )
        naive = UpANNSEngine(make_config(upanns=PIM_NAIVE_CONFIG))
        naive.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=trained_index,
        )
        r_smart = smart.search_batch(small_queries)
        r_naive = naive.search_batch(small_queries)
        assert r_smart.cycle_load_ratio < r_naive.cycle_load_ratio

    def test_cae_produces_length_reduction(self, built_engine):
        assert built_engine.length_reduction_rate() > 0.0

    def test_replication_factor_above_one_with_skew(self, built_engine):
        assert built_engine.replication_factor() > 1.0

    def test_refresh_placement_runs(self, small_dataset, trained_index, small_queries):
        eng = UpANNSEngine(make_config())
        eng.build(small_dataset.vectors, prebuilt_index=trained_index)
        eng.search_batch(small_queries)
        eng.refresh_placement()
        res = eng.search_batch(small_queries)
        ref = trained_index.search(small_queries, 5, 8)
        np.testing.assert_allclose(
            np.where(np.isfinite(res.distances), res.distances, -1),
            np.where(np.isfinite(ref.distances), ref.distances, -1),
            rtol=1e-4, atol=1e-4,
        )


TIMING_FIELDS = (
    "host_filter_s",
    "host_schedule_s",
    "transfer_in_s",
    "dpu_makespan_s",
    "transfer_out_s",
    "host_aggregate_s",
)


def timing_hex(timing):
    return tuple(getattr(timing, f).hex() for f in TIMING_FIELDS)


class TestGroupedKernel:
    """The vectorized grouped path must be bit-identical to the looped
    reference — results AND every charged timing float."""

    @pytest.fixture(scope="class")
    def engine_pair(self, small_dataset, trained_index, history_queries):
        engines = {}
        for mode in ("looped", "grouped"):
            eng = UpANNSEngine(make_config(UpANNSConfig(kernel_mode=mode)))
            eng.build(
                small_dataset.vectors,
                history_queries=history_queries,
                prebuilt_index=trained_index,
            )
            engines[mode] = eng
        return engines

    def test_grouped_matches_looped_bitwise(self, engine_pair, small_queries):
        looped = engine_pair["looped"].search_batch(small_queries)
        grouped = engine_pair["grouped"].search_batch(small_queries)
        np.testing.assert_array_equal(looped.ids, grouped.ids)
        np.testing.assert_array_equal(looped.distances, grouped.distances)
        assert timing_hex(looped.timing) == timing_hex(grouped.timing)

    def test_warm_repeat_batch_identical(self, engine_pair, small_queries):
        """Cross-batch caches (LUT tables, charge memos) must not change
        a repeated batch's results or charged time."""
        grouped = engine_pair["grouped"]
        first = grouped.search_batch(small_queries)
        second = grouped.search_batch(small_queries)
        np.testing.assert_array_equal(first.ids, second.ids)
        np.testing.assert_array_equal(first.distances, second.distances)
        assert timing_hex(first.timing) == timing_hex(second.timing)

    def test_clear_runtime_caches_is_functional_noop(
        self, engine_pair, small_queries
    ):
        grouped = engine_pair["grouped"]
        warm = grouped.search_batch(small_queries)
        grouped.clear_runtime_caches()
        cold = grouped.search_batch(small_queries)
        np.testing.assert_array_equal(warm.ids, cold.ids)
        assert timing_hex(warm.timing) == timing_hex(cold.timing)

    def test_lut_cache_hits_on_repeat_traffic(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        from repro.telemetry.registry import MetricsRegistry, set_registry

        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            eng = UpANNSEngine(make_config())
            eng.build(
                small_dataset.vectors,
                history_queries=history_queries,
                prebuilt_index=trained_index,
            )
            eng.search_batch(small_queries)
            eng.search_batch(small_queries)
            families = {m["name"]: m for m in mine.snapshot()["metrics"]}
            hits = families["repro_lut_cache_hits_total"]["samples"][0]["value"]
            misses = families["repro_lut_cache_misses_total"]["samples"][0]["value"]
        finally:
            set_registry(previous)
        # Every (query, cluster) pair misses once, then hits on repeat.
        assert misses > 0
        assert hits >= misses


class TestResultTransferBytes:
    def test_transfer_out_charged_for_actual_candidates(self, built_engine, small_queries):
        """Result DMA is sized by what the DPUs actually return: with k
        larger than every per-(query, DPU) candidate count, raising k
        further cannot change the bytes moved — the old nq*k*8 sizing
        would have doubled them.  Probing one known cluster pins the
        candidate count per (query, DPU) to that cluster's size."""
        sizes = built_engine.index.ivf.cluster_sizes()
        cluster = int(np.argmax(sizes))
        probes = np.full((len(small_queries), 1), cluster, dtype=np.int64)
        k_small = int(sizes[cluster]) + 10
        res_a = built_engine.search_batch(small_queries, k=k_small, probes=probes)
        res_b = built_engine.search_batch(
            small_queries, k=2 * k_small, probes=probes
        )
        assert res_a.timing.transfer_out_s == res_b.timing.transfer_out_s
        assert res_a.timing.transfer_out_s > 0.0
