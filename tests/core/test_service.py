"""Online serving loop tests."""

import numpy as np
import pytest

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import UpANNSEngine
from repro.core.scheduling import AdaptivePolicy
from repro.core.service import OnlineService
from repro.errors import NotTrainedError
from repro.hardware.specs import PimSystemSpec
from repro.workload.batch import BatchGenerator


def built_engine(small_dataset, trained_index, history_queries):
    cfg = SystemConfig(
        index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=4),
        query=QueryConfig(nprobe=8, k=5, batch_size=30),
        upanns=UpANNSConfig(),
        pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
    )
    eng = UpANNSEngine(cfg)
    eng.build(
        small_dataset.vectors,
        history_queries=history_queries,
        prebuilt_index=trained_index,
    )
    return eng


class TestLifecycle:
    def test_requires_built_engine(self):
        cfg = SystemConfig(
            index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=2),
            pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
        )
        with pytest.raises(NotTrainedError):
            OnlineService(engine=UpANNSEngine(cfg))

    def test_submit_returns_report(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries)
        )
        report = service.submit(small_queries)
        assert report.action in {"keep", "rereplicate", "relocate"}
        assert report.drift >= 0.0
        assert report.result.ids.shape == (len(small_queries), 5)

    def test_latency_accumulates(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries)
        )
        service.submit(small_queries)
        service.submit(small_queries)
        assert service.latency.n_batches == 2
        summary = service.summary()
        assert summary["batches"] == 2.0
        assert summary["p50_ms"] > 0


class TestTailLatency:
    def test_report_carries_running_percentiles(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries)
        )
        first = service.submit(small_queries)
        assert 0 < first.p50_ms <= first.p95_ms <= first.p99_ms
        # One batch: every percentile is that batch's per-query latency.
        assert first.p50_ms == pytest.approx(first.p99_ms)
        second = service.submit(small_queries)
        assert second.p50_ms == pytest.approx(service.latency.percentile_ms(50))
        assert second.p95_ms == pytest.approx(service.latency.percentile_ms(95))
        assert second.p99_ms == pytest.approx(service.latency.percentile_ms(99))

    def test_summary_percentiles_match_recorder(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries)
        )
        service.submit(small_queries)
        summary = service.summary()
        for key, q in (("p50_ms", 50), ("p95_ms", 95), ("p99_ms", 99)):
            assert summary[key] == pytest.approx(service.latency.percentile_ms(q))


class TestAdaptation:
    def test_stable_traffic_keeps_placement(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries),
            policy=AdaptivePolicy(replicate_threshold=0.9, relocate_threshold=0.95),
        )
        for _ in range(3):
            report = service.submit(small_queries)
            assert report.action == "keep"
        assert service.refresh_count == 0

    def test_drifting_traffic_triggers_refresh(
        self, small_dataset, trained_index, history_queries
    ):
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries),
            policy=AdaptivePolicy(replicate_threshold=0.01, relocate_threshold=0.8),
        )
        gen = BatchGenerator(
            small_dataset, batch_size=30, zipf_alpha=1.2, drift_per_batch=0.8,
            rng=np.random.default_rng(9),
        )
        service.serve(gen.batches(4))
        assert service.refresh_count >= 1

    def test_results_stay_exact_through_refreshes(
        self, small_dataset, trained_index, history_queries
    ):
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries),
            policy=AdaptivePolicy(replicate_threshold=0.0, relocate_threshold=0.5),
        )
        gen = BatchGenerator(
            small_dataset, batch_size=30, zipf_alpha=1.0, drift_per_batch=0.5,
            rng=np.random.default_rng(4),
        )
        for batch in gen.batches(3):
            report = service.submit(batch.queries)
            ref = trained_index.search(batch.queries, 5, 8)
            np.testing.assert_allclose(
                np.where(np.isfinite(report.result.distances), report.result.distances, -1),
                np.where(np.isfinite(ref.distances), ref.distances, -1),
                rtol=1e-4, atol=1e-4,
            )

    def test_refresh_rate_limited(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries),
            policy=AdaptivePolicy(replicate_threshold=0.0, relocate_threshold=0.9),
            min_batches_between_refreshes=100,
        )
        for _ in range(3):
            service.submit(small_queries)
        assert service.refresh_count == 0  # rate limiter held it back
