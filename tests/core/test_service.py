"""Online serving loop tests."""

import numpy as np
import pytest

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import UpANNSEngine
from repro.core.scheduling import AdaptivePolicy
from repro.core.service import OnlineService
from repro.errors import NotTrainedError
from repro.hardware.specs import PimSystemSpec
from repro.workload.batch import BatchGenerator


def built_engine(small_dataset, trained_index, history_queries):
    cfg = SystemConfig(
        index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=4),
        query=QueryConfig(nprobe=8, k=5, batch_size=30),
        upanns=UpANNSConfig(),
        pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
    )
    eng = UpANNSEngine(cfg)
    eng.build(
        small_dataset.vectors,
        history_queries=history_queries,
        prebuilt_index=trained_index,
    )
    return eng


class TestLifecycle:
    def test_requires_built_engine(self):
        cfg = SystemConfig(
            index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=2),
            pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
        )
        with pytest.raises(NotTrainedError):
            OnlineService(engine=UpANNSEngine(cfg))

    def test_submit_returns_report(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries)
        )
        report = service.submit(small_queries)
        assert report.action in {"keep", "rereplicate", "relocate"}
        assert report.drift >= 0.0
        assert report.result.ids.shape == (len(small_queries), 5)

    def test_latency_accumulates(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries)
        )
        service.submit(small_queries)
        service.submit(small_queries)
        assert service.latency.n_batches == 2
        summary = service.summary()
        assert summary["batches"] == 2.0
        assert summary["p50_ms"] > 0


class TestTailLatency:
    def test_report_carries_running_percentiles(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries)
        )
        first = service.submit(small_queries)
        assert 0 < first.p50_ms <= first.p95_ms <= first.p99_ms
        # One batch: every percentile is that batch's per-query latency.
        assert first.p50_ms == pytest.approx(first.p99_ms)
        second = service.submit(small_queries)
        assert second.p50_ms == pytest.approx(service.latency.percentile_ms(50))
        assert second.p95_ms == pytest.approx(service.latency.percentile_ms(95))
        assert second.p99_ms == pytest.approx(service.latency.percentile_ms(99))

    def test_summary_percentiles_match_recorder(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries)
        )
        service.submit(small_queries)
        summary = service.summary()
        for key, q in (("p50_ms", 50), ("p95_ms", 95), ("p99_ms", 99)):
            assert summary[key] == pytest.approx(service.latency.percentile_ms(q))


class TestAdaptation:
    def test_stable_traffic_keeps_placement(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries),
            policy=AdaptivePolicy(replicate_threshold=0.9, relocate_threshold=0.95),
        )
        for _ in range(3):
            report = service.submit(small_queries)
            assert report.action == "keep"
        assert service.refresh_count == 0

    def test_drifting_traffic_triggers_refresh(
        self, small_dataset, trained_index, history_queries
    ):
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries),
            policy=AdaptivePolicy(replicate_threshold=0.01, relocate_threshold=0.8),
        )
        gen = BatchGenerator(
            small_dataset, batch_size=30, zipf_alpha=1.2, drift_per_batch=0.8,
            rng=np.random.default_rng(9),
        )
        service.serve(gen.batches(4))
        assert service.refresh_count >= 1

    def test_results_stay_exact_through_refreshes(
        self, small_dataset, trained_index, history_queries
    ):
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries),
            policy=AdaptivePolicy(replicate_threshold=0.0, relocate_threshold=0.5),
        )
        gen = BatchGenerator(
            small_dataset, batch_size=30, zipf_alpha=1.0, drift_per_batch=0.5,
            rng=np.random.default_rng(4),
        )
        for batch in gen.batches(3):
            report = service.submit(batch.queries)
            ref = trained_index.search(batch.queries, 5, 8)
            np.testing.assert_allclose(
                np.where(np.isfinite(report.result.distances), report.result.distances, -1),
                np.where(np.isfinite(ref.distances), ref.distances, -1),
                rtol=1e-4, atol=1e-4,
            )

    def test_refresh_rate_limited(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries),
            policy=AdaptivePolicy(replicate_threshold=0.0, relocate_threshold=0.9),
            min_batches_between_refreshes=100,
        )
        for _ in range(3):
            service.submit(small_queries)
        assert service.refresh_count == 0  # rate limiter held it back


class TestEventStream:
    """The discrete-event core behind ``sim_engine='event'``."""

    def test_sequential_event_stream_matches_composed_wallclock(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        from repro.sim import compose

        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries),
            overlap="sequential",
            sim_engine="event",
        )
        for _ in range(3):
            service.submit(small_queries)
        composed = compose(service.schedules, "sequential")
        assert service.wallclock_seconds() == pytest.approx(
            composed.makespan, rel=1e-9
        )

    def test_double_buffer_queues_behind_real_bus_occupancy(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        from repro.sanitize import sanitize_schedule
        from repro.sim import PIM_BUS, STAGE_TRANSFER_IN, compose

        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries),
            overlap="double_buffer",
            sim_engine="event",
        )
        for _ in range(3):
            service.submit(small_queries)
        combined = service.combined_schedule()
        sequential = compose(service.schedules, "sequential")
        assert combined.makespan < sequential.makespan
        tins = sorted(
            (
                s
                for s in combined.timeline(PIM_BUS).spans
                if s.stage == STAGE_TRANSFER_IN
            ),
            key=lambda s: s.t0,
        )
        assert len(tins) == 6  # broadcast + metadata transfer per batch
        for prev, cur in zip(tins, tins[1:]):
            assert cur.t0 >= prev.t1  # genuine bus serialization
        assert sanitize_schedule(combined) == []

    def test_transient_transfer_faults_keep_retries_contiguous(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        """Double-buffered interleaving with retry traffic: each retry
        rides directly behind the transfer it repairs (no other batch's
        transfer-in wedges in between) and the composed stream
        sanitizes clean."""
        from repro.faults import FaultPlan
        from repro.sanitize import sanitize_schedule
        from repro.sim import PIM_BUS, STAGE_RETRY, STAGE_TRANSFER_IN

        engine = built_engine(small_dataset, trained_index, history_queries)
        engine.inject(FaultPlan.from_specs([], seed=3, transfer_hazard=0.9))
        service = OnlineService(
            engine, overlap="double_buffer", sim_engine="event"
        )
        for _ in range(3):
            service.submit(small_queries)
        combined = service.combined_schedule()
        bus = sorted(combined.timeline(PIM_BUS).spans, key=lambda s: s.t0)
        retries = [s for s in bus if s.stage == STAGE_RETRY]
        assert retries, "hazard 0.9 over 3 batches must fire at least once"
        for i, span in enumerate(bus):
            if span.stage == STAGE_RETRY:
                assert bus[i - 1].stage in (STAGE_TRANSFER_IN, STAGE_RETRY)
        assert sanitize_schedule(combined) == []

    def test_dpu_death_interrupts_stream_mid_flight(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        from repro.faults import FaultPlan, pick_replicated_unit
        from repro.sanitize import sanitize_schedule
        from repro.sim import dpu_resource

        engine = built_engine(small_dataset, trained_index, history_queries)
        target = pick_replicated_unit(engine.placement)
        assert target is not None
        engine.inject(FaultPlan.from_specs([f"dpu:{target}@1"]))
        service = OnlineService(
            engine, overlap="double_buffer", sim_engine="event"
        )
        for _ in range(3):
            service.submit(small_queries)
        assert engine.fault_state is not None
        assert engine.fault_state.death_batches.get(target) == 1
        combined = service.combined_schedule()
        # The victim's lane is fenced at the death batch: nothing on it
        # outlives the stream's view of the fault, and the run-level
        # timeline stays causally clean despite the truncation.
        victim = combined.timeline(dpu_resource(target))
        fence = max((s.t1 for s in victim.spans), default=0.0)
        assert fence < combined.makespan
        assert sanitize_schedule(combined) == []

    def test_empty_service_rejected_in_event_mode_too(
        self, small_dataset, trained_index, history_queries
    ):
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries),
            sim_engine="event",
        )
        with pytest.raises(ValueError, match="empty"):
            service.combined_schedule()
