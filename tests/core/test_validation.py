"""Intake validation: malformed queries fail typed, at the door."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.validation import validate_queries
from repro.errors import ConfigError, InvalidQueryError
from repro.serving import AdmissionPolicy, Request, ServingFrontend, TenantConfig
from repro.tracing.context import TraceContext

from tests.core.test_service import built_engine
from repro.core.service import OnlineService

DIM = 32


class TestValidateQueries:
    def test_single_vector_promoted_to_batch(self):
        out = validate_queries(np.zeros(DIM, dtype=np.float64), dim=DIM)
        assert out.shape == (1, DIM)
        assert out.dtype == np.float32
        assert out.flags["C_CONTIGUOUS"]

    def test_lists_accepted(self):
        out = validate_queries([[0.0] * DIM, [1.0] * DIM], dim=DIM)
        assert out.shape == (2, DIM)

    def test_empty_rejected(self):
        with pytest.raises(InvalidQueryError, match="empty"):
            validate_queries(np.empty((0, DIM), dtype=np.float32), dim=DIM)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(InvalidQueryError, match="dimension mismatch"):
            validate_queries(np.zeros((3, DIM + 1), dtype=np.float32), dim=DIM)

    def test_3d_rejected(self):
        with pytest.raises(InvalidQueryError, match="ndim"):
            validate_queries(np.zeros((2, 3, DIM), dtype=np.float32), dim=DIM)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_rejected_with_row_index(self, bad):
        queries = np.zeros((4, DIM), dtype=np.float32)
        queries[2, 5] = bad
        with pytest.raises(InvalidQueryError, match="row: 2"):
            validate_queries(queries, dim=DIM)

    def test_non_numeric_rejected(self):
        with pytest.raises(InvalidQueryError, match="not a numeric array"):
            validate_queries([["a"] * DIM], dim=DIM)

    def test_invalid_query_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            validate_queries([], dim=DIM)


class TestServiceIntake:
    @pytest.fixture
    def service(self, small_dataset, trained_index, history_queries):
        return OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries)
        )

    def test_empty_batch_rejected(self, service):
        with pytest.raises(InvalidQueryError, match="empty"):
            service.submit(np.empty((0, DIM), dtype=np.float32))

    def test_dim_mismatch_rejected(self, service):
        with pytest.raises(InvalidQueryError, match="dimension mismatch"):
            service.submit(np.zeros((2, DIM + 3), dtype=np.float32))

    def test_nan_rejected(self, service):
        queries = np.zeros((2, DIM), dtype=np.float32)
        queries[1, 0] = np.nan
        with pytest.raises(InvalidQueryError, match="non-finite"):
            service.submit(queries)

    def test_rejected_batch_leaves_no_state(self, service):
        with pytest.raises(InvalidQueryError):
            service.submit(np.empty((0, DIM), dtype=np.float32))
        assert service.works == [] and service.schedules == []
        assert service.latency.n_batches == 0

    def test_trace_stream_position_mismatch_rejected(
        self, service, small_queries
    ):
        ctx = TraceContext.for_batch(len(small_queries), batch=3)
        with pytest.raises(ConfigError, match="stream"):
            service.submit(small_queries, trace=ctx)

    def test_trace_id_count_mismatch_rejected(self, service, small_queries):
        ctx = TraceContext.for_batch(len(small_queries) - 1, batch=0)
        with pytest.raises(ConfigError, match="ids for"):
            service.submit(small_queries, trace=ctx)

    def test_nprobe_override_bounds(self, service, small_queries):
        cfg = service.engine.config.query.nprobe
        with pytest.raises(ConfigError, match="outside"):
            service.submit(small_queries, nprobe=cfg + 1)
        with pytest.raises(ConfigError, match="outside"):
            service.submit(small_queries, nprobe=0)
        with pytest.raises(ConfigError, match="integer"):
            service.submit(small_queries, nprobe=2.5)

    def test_nprobe_override_scales_coverage(self, service, small_queries):
        cfg = service.engine.config.query.nprobe
        report = service.submit(small_queries, nprobe=cfg // 2)
        deg = report.result.degraded
        assert deg is not None
        assert np.allclose(deg.coverage, (cfg // 2) / cfg)
        assert report.coverage_floor == pytest.approx((cfg // 2) / cfg)


class TestFrontendIntake:
    def test_frontend_rejects_non_finite_queries(
        self, small_dataset, trained_index, history_queries
    ):
        """The frontend funnels through the same validation gate."""
        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries)
        )
        frontend = ServingFrontend(
            service=service,
            tenants=(TenantConfig(name="solo", rate_qps=1.0),),
            policy=AdmissionPolicy(shedding=False),
            max_batch=2,
        )
        bad = np.zeros(DIM, dtype=np.float32)
        bad[0] = np.nan
        requests = [
            Request(
                trace_id=f"q{n:06d}",
                tenant="solo",
                query=bad,
                arrival_s=n * 1e-6,
            )
            for n in range(2)
        ]
        with pytest.raises(InvalidQueryError, match="non-finite"):
            frontend.run(requests)
