"""Unit tests for the fault-injection plane (`repro.faults`)."""

import numpy as np
import pytest

from repro.core.placement import Placement, place_clusters
from repro.core.scheduling import schedule_batch
from repro.errors import (
    ConfigError,
    CoverageError,
    DpuFailedError,
    PlacementError,
    SchedulingError,
)
from repro.faults import (
    DEFAULT_BACKOFF_CAP_S,
    DegradedResult,
    FaultEvent,
    FaultPlan,
    coverage_fractions,
    pick_replicated_unit,
    restrict_placement,
    retry_backoff_s,
)


def make_placement(replicas, n_dpus=4):
    n = len(replicas)
    return Placement(
        n_dpus=n_dpus,
        replicas=[list(r) for r in replicas],
        dpu_workload=np.zeros(n_dpus),
        dpu_vectors=np.zeros(n_dpus, dtype=np.int64),
        mean_workload=1.0,
    )


class TestFaultEvent:
    def test_parse_roundtrip(self):
        ev = FaultEvent.parse("dpu:3@2")
        assert (ev.kind, ev.target, ev.batch) == ("dpu", 3, 2)
        assert ev.to_dict() == {"kind": "dpu", "target": 3, "batch": 2}

    @pytest.mark.parametrize(
        "spec", ["dpu3@2", "dpu:3", "dpu:x@2", "dpu:3@y", ""]
    )
    def test_parse_rejects_malformed(self, spec):
        with pytest.raises(ConfigError):
            FaultEvent.parse(spec)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(kind="cosmic_ray", target=0, batch=0)

    def test_negative_fields_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(kind="dpu", target=-1, batch=0)
        with pytest.raises(ConfigError):
            FaultEvent(kind="dpu", target=0, batch=-1)


class TestFaultPlan:
    def test_from_specs(self):
        plan = FaultPlan.from_specs(["dpu:1@0", "transfer:2@1"], seed=9)
        assert len(plan.events) == 2 and plan.seed == 9

    def test_from_dict_mixed_forms(self):
        plan = FaultPlan.from_dict(
            {
                "events": ["dpu:1@0", {"kind": "rank", "target": 0, "batch": 2}],
                "seed": 3,
                "transfer_hazard": 0.1,
            }
        )
        assert plan.events[1].kind == "rank"
        assert plan.transfer_hazard == 0.1

    def test_from_dict_bad_entry(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict({"events": [42]})

    def test_hazard_bounds(self):
        with pytest.raises(ConfigError):
            FaultPlan(transfer_hazard=1.0)
        with pytest.raises(ConfigError):
            FaultPlan(transfer_hazard=-0.1)

    def test_backoff_ordering_enforced(self):
        with pytest.raises(ConfigError):
            FaultPlan(backoff_base_s=2.0, backoff_cap_s=1.0)

    def test_is_empty(self):
        assert FaultPlan().is_empty()
        assert not FaultPlan.from_specs(["dpu:0@0"]).is_empty()
        assert not FaultPlan(transfer_hazard=0.5).is_empty()


class TestConstructionValidation:
    """Every fault/retry knob fails fast, at construction, typed."""

    @pytest.mark.parametrize(
        "hazard", [float("nan"), float("inf"), -0.1, 1.0]
    )
    def test_bad_hazard_rejected(self, hazard):
        with pytest.raises(ConfigError, match="transfer_hazard"):
            FaultPlan(transfer_hazard=hazard)

    @pytest.mark.parametrize("cap", [0.0, -1.0, float("nan")])
    def test_bad_backoff_cap_rejected(self, cap):
        with pytest.raises(ConfigError):
            FaultPlan(backoff_cap_s=cap)

    def test_negative_backoff_base_rejected(self):
        with pytest.raises(ConfigError, match="backoff_base_s"):
            FaultPlan(backoff_base_s=-1e-6)

    def test_nan_backoff_base_rejected(self):
        # NaN fails every comparison, so a plain range check would let
        # it through into every retry computation.
        with pytest.raises(ConfigError, match="backoff_base_s"):
            FaultPlan(backoff_base_s=float("nan"))

    @pytest.mark.parametrize("retries", [0, -1])
    def test_bad_max_retries_rejected(self, retries):
        with pytest.raises(ConfigError, match="max_retries"):
            FaultPlan(max_retries=retries)

    @pytest.mark.parametrize("seed", [-1, True, 1.5])
    def test_bad_seed_rejected(self, seed):
        with pytest.raises(ConfigError, match="seed"):
            FaultPlan(seed=seed)

    @pytest.mark.parametrize("target", [True, 2.5])
    def test_non_integer_event_fields_rejected(self, target):
        with pytest.raises(ConfigError, match="integer"):
            FaultEvent(kind="dpu", target=target, batch=0)
        with pytest.raises(ConfigError, match="integer"):
            FaultEvent(kind="dpu", target=0, batch=target)

    def test_errors_are_value_errors(self):
        # argparse / callers catching ValueError keep working.
        with pytest.raises(ValueError):
            FaultPlan(transfer_hazard=-0.5)


class TestRetryBackoff:
    def test_exponential_then_capped(self):
        assert retry_backoff_s(1, base_s=1e-4, cap_s=1.0) == 1e-4
        assert retry_backoff_s(2, base_s=1e-4, cap_s=1.0) == 2e-4
        assert retry_backoff_s(30, base_s=1e-4, cap_s=1.0) == 1.0

    def test_one_based(self):
        with pytest.raises(ConfigError):
            retry_backoff_s(0)

    def test_default_cap(self):
        assert retry_backoff_s(40) == DEFAULT_BACKOFF_CAP_S


class TestFaultState:
    def test_scheduled_death_fires_at_exact_batch(self):
        state = FaultPlan.from_specs(["dpu:2@1"]).state(n_units=4)
        assert not state.begin_batch().any()  # batch 0
        faults = state.begin_batch()  # batch 1
        assert faults.newly_dead == (2,)
        assert state.dead_units == (2,)
        assert not state.begin_batch().any()  # batch 2: already dead

    def test_rank_and_dimm_expand_to_ranges(self):
        plan = FaultPlan.from_specs(["rank:1@0"])
        state = plan.state(n_units=8, rank_size=2, dimm_size=4)
        assert state.begin_batch().newly_dead == (2, 3)
        plan = FaultPlan.from_specs(["dimm:1@0"])
        state = plan.state(n_units=8, rank_size=2, dimm_size=4)
        assert state.begin_batch().newly_dead == (4, 5, 6, 7)

    def test_out_of_range_target_rejected(self):
        # Validated eagerly at state construction, not at the batch the
        # event would fire on — a plan that can never fire is a config bug.
        with pytest.raises(ConfigError):
            FaultPlan.from_specs(["dpu:9@0"]).state(n_units=4)

    def test_transfer_event_counts_one_retry(self):
        state = FaultPlan.from_specs(["transfer:1@0"]).state(n_units=4)
        faults = state.begin_batch()
        assert faults.transient == {1: 1}
        assert state.total_retries == 1
        assert not state.dead  # explicit transient never escalates

    def test_hazard_is_deterministic(self):
        def run():
            state = FaultPlan(seed=5, transfer_hazard=0.3).state(n_units=16)
            return [sorted(state.begin_batch().transient) for _ in range(4)]

        assert run() == run()

    def test_hazard_escalates_to_death(self):
        # With hazard near 1 every retry fails too, so the retry budget
        # exhausts immediately and units are fenced.
        state = FaultPlan(seed=0, transfer_hazard=0.99, max_retries=2).state(
            n_units=32
        )
        faults = state.begin_batch()
        assert faults.newly_dead  # someone got fenced
        assert all(u in state.dead for u in faults.newly_dead)

    def test_escalated_retries_stay_in_the_ledger(self):
        # A unit fenced for exhausting its retry budget still burned
        # backoff/re-transmission traffic first; that cost must land in
        # the batch record and the cumulative ledger, not vanish with
        # the device.
        state = FaultPlan(seed=0, transfer_hazard=0.99, max_retries=2).state(
            n_units=32
        )
        faults = state.begin_batch()
        assert faults.escalated
        assert set(faults.escalated) == set(faults.newly_dead)
        assert all(a >= 2 for a in faults.escalated.values())
        assert not set(faults.escalated) & set(faults.transient)
        assert state.total_retries == (
            sum(faults.transient.values()) + sum(faults.escalated.values())
        )

    def test_explicit_transfer_pileup_never_escalates(self):
        # Hazard-only escalation: even max_retries explicit transfer
        # events on one unit in one batch model one-shot faults whose
        # retries deterministically succeed.
        state = FaultPlan.from_specs(
            ["transfer:1@0", "transfer:1@0", "transfer:1@0"]
        ).state(n_units=4)
        faults = state.begin_batch()
        assert faults.transient == {1: 3}
        assert not faults.escalated and not state.dead
        assert state.total_retries == 3

    def test_all_units_dead_raises(self):
        state = FaultPlan.from_specs(["dpu:0@0", "dpu:1@0"]).state(n_units=2)
        with pytest.raises(DpuFailedError):
            state.begin_batch()

    def test_backoff_uses_plan_policy(self):
        plan = FaultPlan(backoff_base_s=1e-5, backoff_cap_s=3e-5)
        state = plan.state(n_units=2)
        assert state.backoff_s(1) == 1e-5
        assert state.backoff_s(2) == 2e-5
        assert state.backoff_s(5) == 3e-5


class TestRestrictPlacement:
    def test_no_dead_returns_same_object(self):
        p = make_placement([[0, 1], [2]])
        restricted, rerouted, lost = restrict_placement(p, [])
        assert restricted is p and not rerouted and not lost

    def test_reroute_and_loss_split(self):
        p = make_placement([[0, 1], [1], [2, 3]])
        restricted, rerouted, lost = restrict_placement(p, [1])
        assert restricted.replicas == [[0], [], [2, 3]]
        assert rerouted == {0} and lost == {1}

    def test_replica_order_preserved(self):
        p = make_placement([[3, 0, 2]])
        restricted, _, _ = restrict_placement(p, [0])
        assert restricted.replicas[0] == [3, 2]


class TestPickReplicatedUnit:
    def test_prefers_fully_replicated_busiest(self):
        p = make_placement([[0, 1], [1, 2], [3]])
        # DPU 3 holds a single-replica cluster; 1 holds two clusters.
        assert pick_replicated_unit(p) == 1

    def test_none_when_every_unit_critical(self):
        p = make_placement([[0], [1]])
        assert pick_replicated_unit(p) is None

    def test_exclude(self):
        p = make_placement([[0, 1], [1, 2], [0, 2]])
        first = pick_replicated_unit(p)
        second = pick_replicated_unit(p, exclude=[first])
        assert second is not None and second != first


class TestCoverage:
    def test_fractions_from_matrix(self):
        probes = np.array([[0, 1], [2, 3]])
        cov = coverage_fractions(2, probes, dropped=[(0, 1)])
        assert cov.tolist() == [0.5, 1.0]

    def test_degraded_result_flags(self):
        deg = DegradedResult(coverage=np.array([1.0, 0.5]), dropped_pairs=1)
        assert deg.is_degraded
        assert deg.coverage_floor == 0.5
        assert deg.coverage_mean == 0.75
        with pytest.raises(CoverageError):
            deg.require_coverage(0.9)
        deg.require_coverage(0.5)  # at the floor: fine

    def test_clean_result_not_degraded(self):
        deg = DegradedResult(coverage=np.ones(3))
        assert not deg.is_degraded and deg.coverage_floor == 1.0


class TestPlacementValidation:
    def test_dpus_for_names_cluster(self):
        p = make_placement([[0]])
        with pytest.raises(PlacementError, match="cluster 5"):
            p.dpus_for(5)

    def test_check_complete_names_empty_cluster(self):
        p = make_placement([[0], []])
        with pytest.raises(PlacementError, match="cluster 1"):
            p.check_complete()

    def test_place_clusters_output_is_complete(self):
        sizes = np.array([50, 40, 30, 20])
        freqs = np.array([0.4, 0.3, 0.2, 0.1])
        placement = place_clusters(
            sizes, freqs, n_dpus=4, max_dpu_vectors=200
        )
        placement.check_complete()  # must not raise


class TestScheduleOnMissing:
    def setup_method(self):
        self.sizes = np.array([10, 10])
        self.probes = np.array([[0, 1]])

    def test_raise_is_default(self):
        p = make_placement([[0], []], n_dpus=2)
        with pytest.raises(SchedulingError):
            schedule_batch(self.probes, self.sizes, p)

    def test_drop_records_pairs(self):
        p = make_placement([[0], []], n_dpus=2)
        assignment = schedule_batch(
            self.probes, self.sizes, p, on_missing="drop"
        )
        assert assignment.dropped == [(0, 1)]
        assert (0, 0) in assignment.per_dpu[0]

    def test_bad_mode_rejected(self):
        p = make_placement([[0], [1]], n_dpus=2)
        with pytest.raises(SchedulingError):
            schedule_batch(self.probes, self.sizes, p, on_missing="explode")
