"""Offline-phase statistics tests."""

import pytest

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import OfflineStats, UpANNSEngine
from repro.errors import ConfigError
from repro.hardware.specs import PimSystemSpec


@pytest.fixture(scope="module")
def engine(small_dataset, trained_index, history_queries):
    cfg = SystemConfig(
        index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=4),
        query=QueryConfig(nprobe=8, k=5, batch_size=40),
        upanns=UpANNSConfig(),
        pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
    )
    eng = UpANNSEngine(cfg)
    eng.build(
        small_dataset.vectors,
        history_queries=history_queries,
        prebuilt_index=trained_index,
    )
    return eng


class TestOfflineStats:
    def test_populated_after_build(self, engine):
        assert engine.offline is not None
        assert engine.offline.mram_load_seconds > 0
        assert engine.offline.total_payload_bytes == engine.pim.total_mram_used()

    def test_load_serializes_on_ragged_payloads(self, engine):
        """Per-DPU payloads differ, so the one-time load is sequential
        (the section-2.2 constraint)."""
        per_dpu = [d.mram_used_bytes for d in engine.pim.dpus]
        if len(set(b for b in per_dpu if b > 0)) > 1:
            assert not engine.offline.mram_load_parallel

    def test_replication_overhead_at_least_one(self, engine):
        assert engine.offline.replication_overhead >= 1.0

    def test_replication_overhead_tracks_placement(self, engine):
        assert engine.offline.replication_overhead == pytest.approx(
            engine.pim.total_mram_used()
            / sum(p.nbytes for p in engine._payloads if p.size > 0)
        )

    def test_amortization_decreases_with_volume(self, engine):
        small = engine.offline.amortized_over(1_000, 1_000.0)
        large = engine.offline.amortized_over(1_000_000, 1_000.0)
        assert 0 < large < small < 1

    def test_amortization_validates_inputs(self):
        stats = OfflineStats(mram_load_seconds=1.0)
        with pytest.raises(ConfigError):
            stats.amortized_over(0, 100.0)
        with pytest.raises(ConfigError):
            stats.amortized_over(10, 0.0)
