"""DPU kernel tests: functional exactness + charge accounting."""

import numpy as np
import pytest

from repro.core.cooccurrence import mine_combinations
from repro.core.encoding import encode_cluster
from repro.core.kernel import ClusterPayload, KernelConfig, run_query_on_dpu
from repro.errors import ConfigError
from repro.hardware.dpu import DPU
from repro.ivfpq.adc import adc_distances, topk_from_distances
from repro.ivfpq.lut import build_lut


@pytest.fixture
def dpu():
    return DPU(dpu_id=0, n_tasklets=11)


def make_payloads(index, cluster_ids, cae=False):
    payloads = []
    for c in cluster_ids:
        cl = index.ivf.lists[c]
        if cae:
            model = mine_combinations(cl.codes, top_m=64)
            payloads.append(
                ClusterPayload(
                    cluster_id=c,
                    ids=cl.ids,
                    encoded=encode_cluster(cl.codes, model),
                    cooc=model,
                )
            )
        else:
            payloads.append(ClusterPayload(cluster_id=c, ids=cl.ids, codes=cl.codes))
    return payloads


def reference_topk(index, query, cluster_ids, k):
    all_ids, all_d = [], []
    for c in cluster_ids:
        cl = index.ivf.lists[c]
        if cl.size == 0:
            continue
        lut = build_lut(index.pq, query, index.ivf.centroids[c])
        all_ids.append(cl.ids)
        all_d.append(adc_distances(cl.codes, lut))
    return topk_from_distances(np.concatenate(all_ids), np.concatenate(all_d), k)


def nonempty_clusters(index, n):
    sizes = index.ivf.cluster_sizes()
    return [int(c) for c in np.argsort(sizes)[::-1][:n]]


class TestFunctionalExactness:
    @pytest.mark.parametrize("cae", [False, True])
    def test_kernel_equals_reference(self, dpu, trained_index, small_queries, cae):
        clusters = nonempty_clusters(trained_index, 3)
        payloads = make_payloads(trained_index, clusters, cae=cae)
        out = run_query_on_dpu(
            dpu,
            trained_index.pq,
            trained_index.ivf.centroids,
            payloads,
            small_queries[0],
            KernelConfig(k=5),
        )
        ref_ids, ref_d = reference_topk(trained_index, small_queries[0], clusters, 5)
        np.testing.assert_allclose(out.distances, ref_d, rtol=1e-4, atol=1e-4)

    def test_no_payloads_rejected(self, dpu, trained_index, small_queries):
        with pytest.raises(ConfigError):
            run_query_on_dpu(
                dpu,
                trained_index.pq,
                trained_index.ivf.centroids,
                [],
                small_queries[0],
                KernelConfig(),
            )

    def test_precomputed_luts_equivalent(self, dpu, trained_index, small_queries):
        clusters = nonempty_clusters(trained_index, 2)
        payloads = make_payloads(trained_index, clusters)
        luts = {
            c: build_lut(trained_index.pq, small_queries[0], trained_index.ivf.centroids[c])
            for c in clusters
        }
        out_pre = run_query_on_dpu(
            dpu, trained_index.pq, trained_index.ivf.centroids,
            payloads, small_queries[0], KernelConfig(k=5), luts=luts,
        )
        out_own = run_query_on_dpu(
            DPU(dpu_id=1, n_tasklets=11), trained_index.pq,
            trained_index.ivf.centroids, payloads, small_queries[0], KernelConfig(k=5),
        )
        np.testing.assert_allclose(out_pre.distances, out_own.distances, rtol=1e-5)


class TestCharging:
    def test_counters_accumulate(self, dpu, trained_index, small_queries):
        clusters = nonempty_clusters(trained_index, 2)
        payloads = make_payloads(trained_index, clusters)
        run_query_on_dpu(
            dpu, trained_index.pq, trained_index.ivf.centroids,
            payloads, small_queries[0], KernelConfig(k=5),
        )
        c = dpu.counters
        assert c.instructions > 0
        assert c.mram_read_bytes > 0
        assert c.barriers >= 3 * len(clusters)

    def test_stage_cycles_positive(self, dpu, trained_index, small_queries):
        clusters = nonempty_clusters(trained_index, 2)
        payloads = make_payloads(trained_index, clusters)
        out = run_query_on_dpu(
            dpu, trained_index.pq, trained_index.ivf.centroids,
            payloads, small_queries[0], KernelConfig(k=5),
        )
        assert out.stage.lut_construction > 0
        assert out.stage.distance_calc > 0
        assert out.stage.topk_selection > 0

    def test_workload_scale_multiplies_distance_charges(
        self, trained_index, small_queries
    ):
        clusters = nonempty_clusters(trained_index, 2)
        payloads = make_payloads(trained_index, clusters)
        outs = {}
        for scale in (1.0, 100.0):
            d = DPU(dpu_id=0, n_tasklets=11)
            outs[scale] = run_query_on_dpu(
                d, trained_index.pq, trained_index.ivf.centroids,
                payloads, small_queries[0],
                KernelConfig(k=5, workload_scale=scale),
            )
        ratio = outs[100.0].stage.distance_calc / outs[1.0].stage.distance_calc
        assert ratio > 20  # distance stage scales (barrier overhead fixed)
        # LUT stage is scale-independent.
        assert outs[100.0].stage.lut_construction == pytest.approx(
            outs[1.0].stage.lut_construction, rel=0.01
        )

    def test_cae_reduces_scan_traffic(self, trained_index, small_queries):
        """Opt3's purpose: fewer tokens -> fewer MRAM bytes read."""
        sizes = trained_index.ivf.cluster_sizes()
        c = int(np.argmax(sizes))
        plain = make_payloads(trained_index, [c], cae=False)[0]
        cae = make_payloads(trained_index, [c], cae=True)[0]
        assert cae.token_count <= plain.token_count

    def test_more_tasklets_fewer_cycles(self, trained_index, small_queries):
        clusters = nonempty_clusters(trained_index, 2)
        payloads = make_payloads(trained_index, clusters)
        totals = {}
        for t in (1, 11):
            d = DPU(dpu_id=0, n_tasklets=t)
            out = run_query_on_dpu(
                d, trained_index.pq, trained_index.ivf.centroids,
                payloads, small_queries[0],
                KernelConfig(k=5, n_tasklets=t, workload_scale=50.0),
            )
            totals[t] = out.stage.total
        assert totals[1] > 5 * totals[11]
