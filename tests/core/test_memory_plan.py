"""Opt2 WRAM reuse-plan tests (paper Figure 6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.memory_plan import (
    KERNEL_WRAM_LAYOUT,
    apply_plan,
    plan_wram,
    release_plan,
)
from repro.errors import ConfigError, WramOverflowError
from repro.hardware.specs import DEFAULT_N_TASKLETS, DpuSpec
from repro.hardware.wram import WramAllocator

SIFT_ARGS = dict(
    dim=128, m=16, k=10, n_combo_slots=256, vector_bytes=32, read_vectors=16
)


class TestPlanComputation:
    def test_paper_sift_footprints(self):
        """Section 4.2: codebook 32 KB, LUT 8 KB for SIFT (M=16)."""
        plan = plan_wram(DpuSpec(), requested_tasklets=16, **SIFT_ARGS)
        assert plan.codebook_bytes == 32 * 1024
        assert plan.lut_bytes == 8 * 1024
        assert plan.combo_sum_bytes == 512

    def test_stage1_fits(self):
        plan = plan_wram(DpuSpec(), requested_tasklets=16, **SIFT_ARGS)
        assert plan.stage1_resident <= plan.wram_capacity

    def test_stage3_fits(self):
        plan = plan_wram(DpuSpec(), requested_tasklets=16, **SIFT_ARGS)
        assert plan.stage3_resident <= plan.wram_capacity

    def test_reuse_enables_many_tasklets(self):
        """Recycling the codebook leaves room for >= 16 concurrent
        readers (the paper's example uses 16 threads / 32 KB)."""
        plan = plan_wram(DpuSpec(), requested_tasklets=24, **SIFT_ARGS)
        assert plan.max_tasklets >= 16

    def test_tasklets_clamped_by_wram(self):
        args = dict(SIFT_ARGS)
        args["read_vectors"] = 60  # 1920 B buffers eat WRAM
        plan = plan_wram(DpuSpec(), requested_tasklets=24, **args)
        assert plan.tasklets_supported(24) <= plan.max_tasklets

    def test_oversized_geometry_rejected(self):
        with pytest.raises(WramOverflowError):
            plan_wram(
                DpuSpec(),
                dim=1024,
                m=64,
                k=10,
                n_combo_slots=0,
                vector_bytes=64,
                read_vectors=16,
                requested_tasklets=4,
            )

    def test_dma_limit_enforced(self):
        with pytest.raises(ConfigError):
            plan_wram(
                DpuSpec(),
                dim=128,
                m=16,
                k=10,
                n_combo_slots=0,
                vector_bytes=64,
                read_vectors=64,  # 4096 B > 2048 B DMA limit
                requested_tasklets=4,
            )

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            plan_wram(DpuSpec(), dim=8, m=2, k=1, n_combo_slots=0,
                      vector_bytes=2, read_vectors=0, requested_tasklets=1)


class TestPlanExecution:
    def test_apply_and_release(self):
        plan = plan_wram(DpuSpec(), requested_tasklets=16, **SIFT_ARGS)
        alloc = WramAllocator(capacity=plan.wram_capacity)
        apply_plan(plan, alloc, 16)
        assert not alloc.is_live("codebook")  # recycled in stage 3
        assert alloc.is_live("lut")
        release_plan(plan, alloc, 16)
        assert alloc.used_bytes == 0

    def test_codebook_region_actually_reused(self):
        plan = plan_wram(DpuSpec(), requested_tasklets=16, **SIFT_ARGS)
        alloc = WramAllocator(capacity=plan.wram_capacity)
        apply_plan(plan, alloc, 16)
        # The first read buffer starts where the codebook lived.
        assert alloc.region("read_buffer_0").offset == 0

    def test_peak_never_exceeds_capacity(self):
        plan = plan_wram(DpuSpec(), requested_tasklets=24, **SIFT_ARGS)
        alloc = WramAllocator(capacity=plan.wram_capacity)
        apply_plan(plan, alloc, 24)
        assert alloc.peak_bytes <= plan.wram_capacity

    @given(
        m=st.sampled_from([8, 16, 32]),
        k=st.integers(1, 100),
        slots=st.sampled_from([0, 64, 256]),
        read_vectors=st.integers(1, 32),
        tasklets=st.integers(1, 24),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_plan_is_executable(self, m, k, slots, read_vectors, tasklets):
        """Property: whatever plan plan_wram returns can be replayed on a
        real allocator without overlap or overflow."""
        dim = m * 8
        try:
            plan = plan_wram(
                DpuSpec(),
                dim=dim,
                m=m,
                k=k,
                n_combo_slots=slots,
                vector_bytes=2 * m,
                read_vectors=read_vectors,
                requested_tasklets=tasklets,
            )
        except (WramOverflowError, ConfigError):
            return
        alloc = WramAllocator(capacity=plan.wram_capacity)
        apply_plan(plan, alloc, tasklets)
        release_plan(plan, alloc, tasklets)
        assert alloc.used_bytes == 0


class TestDeclarativeLayout:
    """KERNEL_WRAM_LAYOUT (the WRAM001-checked declaration) must agree
    with what plan_wram computes at the paper's SIFT operating point."""

    def _paper_plan(self):
        return plan_wram(
            DpuSpec(),
            dim=128,
            m=16,
            k=10,
            n_combo_slots=256,
            vector_bytes=16,
            read_vectors=16,
            requested_tasklets=DEFAULT_N_TASKLETS,
        )

    def _phases(self):
        return {phase: dict(regions) for phase, regions in KERNEL_WRAM_LAYOUT}

    def test_phase_names(self):
        assert list(self._phases()) == ["lut_build", "combo_sums", "distance_scan"]

    def test_sizes_match_plan(self):
        plan = self._paper_plan()
        phases = self._phases()
        assert phases["lut_build"]["codebook"] == plan.codebook_bytes
        assert phases["lut_build"]["lut"] == plan.lut_bytes
        assert phases["combo_sums"]["combo_sums"] == plan.combo_sum_bytes
        scan = phases["distance_scan"]
        assert scan["read_buffers"] == DEFAULT_N_TASKLETS * plan.read_buffer_bytes
        assert scan["heaps"] == DEFAULT_N_TASKLETS * plan.heap_bytes

    def test_codebook_region_is_recycled(self):
        """The Figure 6 story, stated declaratively: the codebook is gone
        by the distance scan and its space feeds the per-tasklet buffers."""
        phases = self._phases()
        assert "codebook" in phases["lut_build"]
        assert "codebook" not in phases["distance_scan"]

    def test_every_phase_fits_wram(self):
        capacity = DpuSpec().wram_bytes
        for phase, regions in self._phases().items():
            assert sum(regions.values()) <= capacity, phase
