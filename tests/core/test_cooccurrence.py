"""Opt3 mining tests: ECG, frequent triples, coverage."""

import numpy as np
import pytest

from repro.core.cooccurrence import (
    CooccurrenceModel,
    build_ecg,
    combination_coverage,
    mine_combinations,
)
from repro.errors import ConfigError


def planted_codes(n=200, m=8, seed=0, triple=(1, 15, 26), pos=0, fraction=0.4):
    """Random codes with a planted triple at a fixed anchor position."""
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 256, size=(n, m)).astype(np.uint8)
    hit = rng.random(n) < fraction
    codes[hit, pos : pos + 3] = triple
    return codes, hit


class TestMining:
    def test_planted_triple_found_first(self):
        codes, hit = planted_codes()
        model = mine_combinations(codes, top_m=16)
        top = model.combos[0]
        assert top.start_pos == 0
        assert top.codes == (1, 15, 26)
        assert top.count == int(hit.sum())

    def test_counts_are_exact(self):
        codes = np.array(
            [[1, 2, 3, 9], [1, 2, 3, 8], [1, 2, 3, 7], [5, 2, 3, 4]], dtype=np.uint8
        )
        model = mine_combinations(codes, top_m=10, min_count=2)
        found = {(c.start_pos, c.codes): c.count for c in model.combos}
        assert found[(0, (1, 2, 3))] == 3
        assert found[(1, (2, 3, 9))] == 1 if (1, (2, 3, 9)) in found else True

    def test_min_count_filters(self):
        codes, _ = planted_codes(fraction=0.0)  # fully random
        model = mine_combinations(codes, top_m=256, min_count=3)
        assert all(c.count >= 3 for c in model.combos)

    def test_top_m_limit(self):
        codes, _ = planted_codes(n=500, fraction=0.0)
        model = mine_combinations(codes, top_m=5, min_count=1)
        assert model.n_slots <= 5

    def test_slots_are_sequential(self):
        codes, _ = planted_codes()
        model = mine_combinations(codes, top_m=32, min_count=1)
        assert [c.slot for c in model.combos] == list(range(model.n_slots))

    def test_sorted_by_count_desc(self):
        codes, _ = planted_codes(n=400, fraction=0.3)
        model = mine_combinations(codes, top_m=64, min_count=1)
        counts = [c.count for c in model.combos]
        assert counts == sorted(counts, reverse=True)

    def test_empty_cluster(self):
        model = mine_combinations(np.empty((0, 8), dtype=np.uint8))
        assert model.n_slots == 0

    def test_too_short_vectors(self):
        model = mine_combinations(np.zeros((5, 2), dtype=np.uint8))
        assert model.n_slots == 0

    def test_length_bounds_enforced(self):
        with pytest.raises(ConfigError):
            mine_combinations(np.zeros((5, 8), np.uint8), combo_length=1)
        with pytest.raises(ConfigError):
            mine_combinations(np.zeros((5, 8), np.uint8), combo_length=8)

    @pytest.mark.parametrize("length", [2, 4, 5])
    def test_longer_combinations_mined(self, length):
        """The paper's extension: longer runs when cache allows."""
        codes = np.zeros((30, 8), dtype=np.uint8)
        codes[:, 1 : 1 + length] = np.arange(10, 10 + length)
        model = mine_combinations(codes, top_m=8, combo_length=length, min_count=5)
        assert model.combo_length == length
        planted = (1, tuple(range(10, 10 + length)))
        assert planted in {(c.start_pos, c.codes) for c in model.combos}

    @pytest.mark.parametrize("length", [2, 4])
    def test_longer_combinations_preserve_distances(self, length):
        """CAE with non-default lengths stays distance-exact."""
        from repro.core.encoding import (
            build_flat_table,
            decode_distances,
            encode_cluster,
        )
        from repro.ivfpq.adc import adc_distances

        rng = np.random.default_rng(0)
        codes = rng.integers(0, 4, size=(100, 8)).astype(np.uint8)  # dense reuse
        model = mine_combinations(codes, top_m=64, combo_length=length)
        encoded = encode_cluster(codes, model)
        assert encoded.length_reduction_rate() > 0.0
        lut = rng.random((8, 256)).astype(np.float32)
        np.testing.assert_allclose(
            decode_distances(encoded, build_flat_table(lut, model)),
            adc_distances(codes, lut),
            rtol=1e-5,
            atol=1e-4,
        )

    def test_positions_are_anchored(self):
        """A triple at pos 2 must not match the same codes at pos 0."""
        codes = np.zeros((10, 8), dtype=np.uint8)
        codes[:, 2:5] = (7, 8, 9)
        model = mine_combinations(codes, top_m=4, min_count=5)
        assert any(c.start_pos == 2 and c.codes == (7, 8, 9) for c in model.combos)
        assert not any(c.start_pos == 0 and c.codes == (7, 8, 9) for c in model.combos)


class TestPartialSums:
    def test_partial_sum_values(self):
        codes, _ = planted_codes()
        model = mine_combinations(codes, top_m=8)
        lut = np.arange(8 * 256, dtype=np.float32).reshape(8, 256)
        sums = model.partial_sums(lut)
        for combo in model.combos:
            expected = sum(
                lut[combo.start_pos + off, code]
                for off, code in enumerate(combo.codes)
            )
            assert sums[combo.slot] == pytest.approx(expected)

    def test_wrong_lut_shape(self):
        model = CooccurrenceModel(m=8, combos=[])
        with pytest.raises(ConfigError):
            model.partial_sums(np.zeros((4, 256), dtype=np.float32))


class TestECG:
    def test_edge_weights_match_pair_counts(self):
        codes = np.array([[1, 2, 3], [1, 2, 4], [1, 5, 4]], dtype=np.uint8)
        g = build_ecg(codes)
        assert g[(0, 1)][(1, 2)]["weight"] == 2
        assert g[(1, 2)][(2, 3)]["weight"] == 1
        assert g[(0, 1)][(1, 5)]["weight"] == 1

    def test_mined_triples_are_ecg_paths(self):
        """Every mined combination corresponds to a path of positive-
        weight edges in the ECG (the paper's mining abstraction)."""
        codes, _ = planted_codes(n=100)
        g = build_ecg(codes)
        model = mine_combinations(codes, top_m=8, min_count=2)
        for combo in model.combos:
            a = (combo.start_pos, combo.codes[0])
            b = (combo.start_pos + 1, combo.codes[1])
            c = (combo.start_pos + 2, combo.codes[2])
            assert g.has_edge(a, b) and g[a][b]["weight"] >= combo.count
            assert g.has_edge(b, c) and g[b][c]["weight"] >= combo.count


class TestCoverage:
    def test_planted_coverage(self):
        codes, hit = planted_codes(fraction=0.5)
        model = mine_combinations(codes, top_m=1, min_count=2)
        cov = combination_coverage(codes, model)
        assert cov >= hit.mean() - 0.01

    def test_no_combos_zero_coverage(self):
        codes, _ = planted_codes()
        assert combination_coverage(codes, CooccurrenceModel(m=8, combos=[])) == 0.0

    def test_real_cluster_has_structure(self, cluster_codes):
        """The synthetic datasets must plant minable co-occurrence."""
        model = mine_combinations(cluster_codes, top_m=256)
        assert combination_coverage(cluster_codes, model) > 0.3
