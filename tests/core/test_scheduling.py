"""Algorithm 2 (query scheduling) tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.placement import place_clusters, random_placement
from repro.core.scheduling import AdaptivePolicy, Assignment, schedule_batch
from repro.errors import SchedulingError
from repro.data.skew import zipf_weights


def setup(m=30, n_dpus=8, nq=50, nprobe=4, seed=0, headroom=3.0):
    rng = np.random.default_rng(seed)
    sizes = np.maximum(1, rng.lognormal(4, 1.0, size=m).astype(np.int64))
    freqs = zipf_weights(m, 0.8)
    rng.shuffle(freqs)
    pl = place_clusters(
        sizes, freqs, n_dpus, max_dpu_vectors=10**7, replication_headroom=headroom
    )
    probes = np.stack(
        [rng.choice(m, size=nprobe, replace=False, p=freqs) for _ in range(nq)]
    )
    return sizes, pl, probes


class TestAssignmentCorrectness:
    def test_every_pair_assigned_exactly_once(self):
        sizes, pl, probes = setup()
        a = schedule_batch(probes, sizes, pl)
        seen = sorted(
            (qi, c) for d in range(pl.n_dpus) for qi, c in a.per_dpu[d]
        )
        expected = sorted(
            (qi, int(c)) for qi in range(probes.shape[0]) for c in probes[qi]
        )
        assert seen == expected

    def test_pairs_only_on_replica_holders(self):
        sizes, pl, probes = setup()
        a = schedule_batch(probes, sizes, pl)
        for d in range(pl.n_dpus):
            for _, c in a.per_dpu[d]:
                assert d in pl.replicas[c]

    def test_workload_bookkeeping(self):
        sizes, pl, probes = setup()
        a = schedule_batch(probes, sizes, pl)
        recomputed = np.zeros(pl.n_dpus)
        for d in range(pl.n_dpus):
            recomputed[d] = sum(sizes[c] for _, c in a.per_dpu[d])
        np.testing.assert_allclose(a.dpu_workload, recomputed)

    def test_missing_replica_raises(self):
        sizes, pl, probes = setup()
        pl.replicas[int(probes[0, 0])] = []
        with pytest.raises(SchedulingError):
            schedule_batch(probes, sizes, pl)

    def test_total_pairs(self):
        sizes, pl, probes = setup(nq=20, nprobe=3)
        a = schedule_batch(probes, sizes, pl)
        assert a.total_pairs() == 60

    def test_queries_per_dpu(self):
        sizes, pl, probes = setup(nq=10, nprobe=2)
        a = schedule_batch(probes, sizes, pl)
        assert a.queries_per_dpu().sum() >= 10  # each query >= 1 DPU


class TestBalance:
    def test_beats_forced_single_replica(self):
        """With replication + greedy choice, balance beats the naive
        (random single-replica) mapping on skewed traffic."""
        rng = np.random.default_rng(3)
        m, n_dpus, nq, nprobe = 60, 16, 200, 4
        sizes = np.maximum(1, rng.lognormal(4, 1.0, size=m).astype(np.int64))
        freqs = zipf_weights(m, 1.0)
        rng.shuffle(freqs)
        probes = np.stack(
            [rng.choice(m, size=nprobe, replace=False, p=freqs) for _ in range(nq)]
        )
        smart_pl = place_clusters(
            sizes, freqs, n_dpus, max_dpu_vectors=10**7, replication_headroom=3.0
        )
        naive_pl = random_placement(sizes, n_dpus, max_dpu_vectors=10**7, rng=rng)
        smart = schedule_batch(probes, sizes, smart_pl)
        naive = schedule_batch(probes, sizes, naive_pl)
        assert smart.load_ratio() < naive.load_ratio()

    def test_refinement_never_hurts(self):
        sizes, pl, probes = setup(m=60, n_dpus=16, nq=150)
        refined = schedule_batch(probes, sizes, pl, refine=True)
        greedy = schedule_batch(probes, sizes, pl, refine=False)
        assert refined.load_ratio() <= greedy.load_ratio() + 1e-9

    def test_refinement_preserves_assignment_validity(self):
        sizes, pl, probes = setup(m=60, n_dpus=16, nq=150)
        a = schedule_batch(probes, sizes, pl, refine=True)
        for d in range(pl.n_dpus):
            for _, c in a.per_dpu[d]:
                assert d in pl.replicas[c]
        seen = sum(len(p) for p in a.per_dpu)
        assert seen == probes.size

    def test_load_ratio_on_empty(self):
        a = Assignment(n_dpus=4, per_dpu=[[], [], [], []], dpu_workload=np.zeros(4))
        assert a.load_ratio() == 1.0


class TestAdaptivePolicy:
    def test_thresholds(self):
        p = AdaptivePolicy(replicate_threshold=0.05, relocate_threshold=0.25)
        assert p.decide(0.01) == "keep"
        assert p.decide(0.10) == "rereplicate"
        assert p.decide(0.50) == "relocate"

    def test_history_recorded(self):
        p = AdaptivePolicy()
        p.decide(0.0)
        p.decide(0.9)
        assert p.history() == ["keep", "relocate"]


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(4, 40),
    n_dpus=st.integers(1, 16),
    nq=st.integers(1, 40),
    nprobe=st.integers(1, 4),
    seed=st.integers(0, 500),
)
def test_scheduling_properties(m, n_dpus, nq, nprobe, seed):
    """Property: every (query, probe) pair lands on exactly one replica
    holder, for arbitrary skew and topology."""
    nprobe = min(nprobe, m)
    rng = np.random.default_rng(seed)
    sizes = np.maximum(1, rng.lognormal(2, 1.0, size=m).astype(np.int64))
    freqs = rng.random(m) + 1e-9
    freqs /= freqs.sum()
    pl = place_clusters(sizes, freqs, n_dpus, max_dpu_vectors=int(sizes.sum()) + 1)
    probes = np.stack(
        [rng.choice(m, size=nprobe, replace=False) for _ in range(nq)]
    )
    a = schedule_batch(probes, sizes, pl)
    assert a.total_pairs() == nq * nprobe
    for d in range(n_dpus):
        for _, c in a.per_dpu[d]:
            assert d in pl.replicas[c]
