"""Multi-host extension tests (paper section 5.5)."""

import numpy as np
import pytest

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import UpANNSEngine
from repro.core.multihost import MultiHostEngine, NetworkModel
from repro.errors import ConfigError, NotTrainedError, SchedulingError
from repro.hardware.specs import PimSystemSpec


def host_config(n_dpus=16, nprobe=8, k=5):
    return SystemConfig(
        index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=6),
        query=QueryConfig(nprobe=nprobe, k=k, batch_size=40),
        upanns=UpANNSConfig(),
        pim=PimSystemSpec(n_dimms=1, chips_per_dimm=n_dpus // 8, dpus_per_chip=8),
    )


@pytest.fixture(scope="module")
def multihost(small_dataset, trained_index, history_queries):
    engine = MultiHostEngine(host_configs=[host_config(), host_config(), host_config()])
    engine.build(
        small_dataset.vectors,
        history_queries=history_queries,
        prebuilt_index=trained_index,
    )
    return engine


class TestConstruction:
    def test_needs_hosts(self):
        with pytest.raises(ConfigError):
            MultiHostEngine(host_configs=[])

    def test_geometry_must_match(self):
        other = SystemConfig(
            index=IndexConfig(dim=32, n_clusters=16, m=8, train_iters=2),
            pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
        )
        with pytest.raises(ConfigError):
            MultiHostEngine(host_configs=[host_config(), other])

    def test_search_before_build(self):
        eng = MultiHostEngine(host_configs=[host_config()])
        with pytest.raises(NotTrainedError):
            eng.search_batch(np.zeros((1, 32), np.float32))

    def test_every_cluster_owned_somewhere(self, multihost):
        owned = set()
        for reps in multihost.host_placement.replicas:
            owned.update(reps)
            assert len(reps) >= 1
        assert owned <= set(range(3))

    def test_ownership_roughly_balanced(self, multihost):
        counts = multihost.cluster_ownership()
        assert min(counts) > 0
        assert max(counts) <= 3 * min(counts)

    def test_replication_capped(self, multihost):
        for reps in multihost.host_placement.replicas:
            assert len(reps) <= multihost.max_host_replicas


class TestFunctionalExactness:
    def test_matches_single_host_reference(
        self, multihost, trained_index, small_queries
    ):
        """Sharding across hosts must not change results (section 5.5:
        'core search operations remain local')."""
        res = multihost.search_batch(small_queries)
        ref = trained_index.search(small_queries, 5, 8)
        np.testing.assert_allclose(
            np.where(np.isfinite(res.distances), res.distances, -1),
            np.where(np.isfinite(ref.distances), ref.distances, -1),
            rtol=1e-4,
            atol=1e-4,
        )

    def test_single_host_degenerate_case(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        solo = MultiHostEngine(host_configs=[host_config()])
        solo.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=trained_index,
        )
        res = solo.search_batch(small_queries)
        ref = trained_index.search(small_queries, 5, 8)
        np.testing.assert_allclose(
            np.where(np.isfinite(res.distances), res.distances, -1),
            np.where(np.isfinite(ref.distances), ref.distances, -1),
            rtol=1e-4, atol=1e-4,
        )

    def test_k_override(self, multihost, small_queries):
        res = multihost.search_batch(small_queries, k=3)
        assert res.ids.shape == (len(small_queries), 3)


class TestTiming:
    def test_components_positive_and_sum(self, multihost, small_queries):
        res = multihost.search_batch(small_queries)
        assert res.coordinator_filter_s > 0
        assert res.route_s > 0
        assert res.distribute_s > 0
        assert res.host_makespan_s > 0
        assert res.gather_s > 0
        assert res.total_s == pytest.approx(
            res.coordinator_filter_s
            + res.route_s
            + res.distribute_s
            + res.host_makespan_s
            + res.gather_s
            + res.merge_s
        )

    def test_qps(self, multihost, small_queries):
        res = multihost.search_batch(small_queries)
        assert res.qps == pytest.approx(len(small_queries) / res.total_s)

    def test_network_model(self):
        net = NetworkModel(bandwidth_bytes_per_s=1e9, latency_s=1e-5)
        assert net.transfer_seconds([]) == 0.0
        assert net.transfer_seconds([1e9, 5e8]) == pytest.approx(1.0 + 1e-5)

    def test_only_search_is_distributed(self, multihost, small_queries):
        """Paper: 'only query distribution and result aggregation
        require cross-host communication' — the network terms must be
        small next to local search at billion-equivalent scale."""
        res = multihost.search_batch(small_queries)
        network = res.distribute_s + res.gather_s
        assert network < res.total_s  # present but not dominant here


class TestClusterSubsetEngine:
    def test_subset_engine_rejects_unowned_probes(
        self, small_dataset, trained_index
    ):
        eng = UpANNSEngine(host_config())
        owned = np.arange(16)  # first half of the 32 clusters
        eng.build(
            small_dataset.vectors,
            prebuilt_index=trained_index,
            cluster_subset=owned,
        )
        q = small_dataset.vectors[:2]
        bad = [np.array([20]), np.array([0])]  # cluster 20 unowned
        with pytest.raises(SchedulingError):
            eng.search_batch(q, probes=bad)

    def test_subset_engine_stores_only_owned(self, small_dataset, trained_index):
        eng = UpANNSEngine(host_config())
        owned = np.arange(16)
        eng.build(
            small_dataset.vectors,
            prebuilt_index=trained_index,
            cluster_subset=owned,
        )
        stored = sum(
            1
            for c in range(32)
            if any(eng.pim.dpu(d).mram_contains(f"cluster_{c}") for d in range(16))
        )
        sizes = trained_index.ivf.cluster_sizes()
        expected = int((sizes[:16] > 0).sum())
        assert stored == expected

    def test_ragged_probes_match_matrix_probes(
        self, small_dataset, trained_index, small_queries
    ):
        eng = UpANNSEngine(host_config())
        eng.build(small_dataset.vectors, prebuilt_index=trained_index)
        matrix = trained_index.ivf.search_clusters(small_queries, 8)
        ragged = [row.copy() for row in matrix]
        a = eng.search_batch(small_queries, probes=matrix)
        b = eng.search_batch(small_queries, probes=ragged)
        np.testing.assert_array_equal(a.ids, b.ids)

    def test_probe_count_mismatch_rejected(self, small_dataset, trained_index, small_queries):
        eng = UpANNSEngine(host_config())
        eng.build(small_dataset.vectors, prebuilt_index=trained_index)
        with pytest.raises(ConfigError):
            eng.search_batch(small_queries, probes=[np.array([0])])
