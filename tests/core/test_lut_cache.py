"""Cross-batch LUT cache tests: LRU semantics, capacity, counters."""

import numpy as np
import pytest

from repro.core.lut_cache import LutCache, check_capacity, query_digest
from repro.errors import ConfigError
from repro.telemetry.registry import MetricsRegistry, set_registry


@pytest.fixture()
def registry():
    mine = MetricsRegistry()
    previous = set_registry(mine)
    yield mine
    set_registry(previous)


def table(fill, n=8):
    return np.full(n, fill, dtype=np.float32)  # 4 * n bytes


def key(i):
    return (bytes([i]) * 16, i, 0)


def counter_values(registry):
    families = {m["name"]: m for m in registry.snapshot()["metrics"]}

    def value(name):
        fam = families.get(name)
        return fam["samples"][0]["value"] if fam and fam["samples"] else 0.0

    return (
        value("repro_lut_cache_hits_total"),
        value("repro_lut_cache_misses_total"),
    )


class TestLruSemantics:
    def test_get_returns_stored_table(self, registry):
        cache = LutCache(1024)
        cache.put(key(1), table(1.0))
        got = cache.get(key(1))
        np.testing.assert_array_equal(got, table(1.0))

    def test_eviction_is_by_bytes_lru_first(self, registry):
        cache = LutCache(96)  # fits three 32-byte tables
        for i in range(3):
            cache.put(key(i), table(float(i)))
        cache.get(key(0))  # refresh 0 -> 1 is now LRU
        cache.put(key(3), table(3.0))
        assert cache.get(key(1)) is None
        assert cache.get(key(0)) is not None
        assert cache.get(key(3)) is not None
        assert cache.nbytes <= 96

    def test_put_refreshes_existing_key_without_double_count(self, registry):
        cache = LutCache(1024)
        cache.put(key(1), table(1.0))
        cache.put(key(1), table(2.0))
        assert cache.nbytes == table(2.0).nbytes
        np.testing.assert_array_equal(cache.get(key(1)), table(2.0))

    def test_oversized_table_not_retained(self, registry):
        cache = LutCache(16)
        cache.put(key(1), table(1.0))  # 32 bytes > capacity
        assert len(cache) == 0
        assert cache.get(key(1)) is None

    def test_zero_capacity_disables(self, registry):
        cache = LutCache(0)
        assert not cache.enabled
        cache.put(key(1), table(1.0))
        assert cache.get(key(1)) is None
        assert len(cache) == 0

    def test_clear_drops_everything(self, registry):
        cache = LutCache(1024)
        cache.put(key(1), table(1.0))
        cache.clear()
        assert len(cache) == 0
        assert cache.nbytes == 0
        assert cache.stats()["entries"] == 0


class TestCounters:
    def test_hits_and_misses_counted(self, registry):
        cache = LutCache(1024, registry=registry)
        cache.put(key(1), table(1.0))
        cache.get(key(1))
        cache.get(key(2))
        assert counter_values(registry) == (1.0, 1.0)

    def test_get_many_matches_sequential_gets(self, registry):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        a = LutCache(1024, registry=reg_a)
        b = LutCache(1024, registry=reg_b)
        for c in (a, b):
            c.put(key(1), table(1.0))
            c.put(key(3), table(3.0))
        keys = [key(1), key(2), key(3), key(4), key(1)]
        batched = a.get_many(keys)
        single = [b.get(k) for k in keys]
        for got_a, got_b in zip(batched, single):
            if got_b is None:
                assert got_a is None
            else:
                np.testing.assert_array_equal(got_a, got_b)
        assert counter_values(reg_a) == counter_values(reg_b) == (3.0, 2.0)

    def test_get_many_refreshes_recency(self, registry):
        cache = LutCache(64)  # fits two 32-byte tables
        cache.put(key(1), table(1.0))
        cache.put(key(2), table(2.0))
        cache.get_many([key(1)])  # 2 becomes LRU
        cache.put(key(3), table(3.0))
        assert cache.get(key(2)) is None
        assert cache.get(key(1)) is not None


class TestAdmissionFloor:
    """Frequency-floor admission: retention-only, never values."""

    def freqs(self):
        # Cluster 0 is hot (0.9), cluster 1 is cold tail (0.01).
        return np.array([0.9, 0.01, 0.0])

    def test_below_floor_puts_skipped_and_counted(self, registry):
        cache = LutCache(1024)
        cache.set_admission(self.freqs(), floor=0.05)
        cache.put(key(0), table(1.0))
        cache.put(key(1), table(2.0))
        assert cache.get(key(0)) is not None  # hot cluster retained
        assert cache.get(key(1)) is None  # tail cluster not retained
        assert cache.stats()["admission_skips"] == 1
        families = {
            m["name"]: m for m in registry.snapshot()["metrics"]
        }
        fam = families["repro_lut_cache_admission_skips_total"]
        assert fam["samples"][0]["value"] == 1

    def test_zero_floor_admits_everything(self, registry):
        cache = LutCache(1024)
        cache.set_admission(self.freqs(), floor=0.0)
        cache.put(key(1), table(2.0))
        assert cache.get(key(1)) is not None
        assert cache.stats()["admission_skips"] == 0

    def test_disarm_restores_full_admission(self, registry):
        cache = LutCache(1024)
        cache.set_admission(self.freqs(), floor=0.05)
        cache.set_admission(None)
        cache.put(key(1), table(2.0))
        assert cache.get(key(1)) is not None

    def test_out_of_range_cluster_admitted(self, registry):
        cache = LutCache(1024)
        cache.set_admission(self.freqs(), floor=0.05)
        cache.put(key(7), table(3.0))  # no frequency row for cluster 7
        assert cache.get(key(7)) is not None

    def test_admission_never_changes_returned_values(self, registry):
        """A skipped put only affects retention: the caller's table is
        untouched and a later get is an honest miss, not a wrong hit."""
        cache = LutCache(1024)
        cache.set_admission(self.freqs(), floor=0.05)
        t = table(4.0)
        before = t.copy()
        cache.put(key(1), t)
        np.testing.assert_array_equal(t, before)
        assert cache.get(key(1)) is None


class TestAdmissionFloorEngine:
    """lut_admission_floor wiring: config validation + engine no-op."""

    def test_config_rejects_out_of_range_floor(self):
        from repro.config import UpANNSConfig

        with pytest.raises(ConfigError):
            UpANNSConfig(lut_admission_floor=-0.1)
        with pytest.raises(ConfigError):
            UpANNSConfig(lut_admission_floor=1.5)
        assert UpANNSConfig(lut_admission_floor=0.2).lut_admission_floor == 0.2

    def test_floor_is_functional_noop_on_engine(
        self, registry, small_dataset, trained_index, history_queries,
        small_queries,
    ):
        from repro.config import (
            IndexConfig,
            QueryConfig,
            SystemConfig,
            UpANNSConfig,
        )
        from repro.core.engine import UpANNSEngine
        from repro.hardware.specs import PimSystemSpec

        def build(floor):
            cfg = SystemConfig(
                index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=6),
                query=QueryConfig(nprobe=8, k=5, batch_size=40),
                upanns=UpANNSConfig(lut_admission_floor=floor),
                pim=PimSystemSpec(
                    n_dimms=1, chips_per_dimm=2, dpus_per_chip=8
                ),
            )
            eng = UpANNSEngine(cfg)
            eng.build(
                small_dataset.vectors,
                history_queries=history_queries,
                prebuilt_index=trained_index,
            )
            return eng

        golden = build(0.0)
        floored = build(0.5)  # aggressive floor: most clusters skipped
        ref = golden.search_batch(small_queries)
        ref2 = golden.search_batch(small_queries)
        got = floored.search_batch(small_queries)
        got2 = floored.search_batch(small_queries)
        np.testing.assert_array_equal(ref.ids, got.ids)
        np.testing.assert_array_equal(ref.distances, got.distances)
        np.testing.assert_array_equal(ref2.ids, got2.ids)
        np.testing.assert_array_equal(ref2.distances, got2.distances)
        assert floored.lut_cache.stats()["admission_skips"] > 0
        assert golden.lut_cache.stats()["admission_skips"] == 0


class TestDigestAndCapacity:
    def test_digest_stable_and_content_sensitive(self):
        q = np.arange(8, dtype=np.float32)
        assert query_digest(q) == query_digest(q.copy())
        assert query_digest(q) != query_digest(q + 1)
        assert len(query_digest(q)) == 16

    def test_digest_normalizes_dtype(self):
        q = np.arange(8, dtype=np.float64)
        assert query_digest(q) == query_digest(q.astype(np.float32))

    def test_check_capacity_rejects_negative(self):
        assert check_capacity(0) == 0
        assert check_capacity(1024) == 1024
        with pytest.raises(ConfigError):
            check_capacity(-1)
