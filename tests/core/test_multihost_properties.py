"""Multi-host property test: exactness must hold for any host count and
replica cap."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.multihost import MultiHostEngine
from repro.hardware.specs import PimSystemSpec
from repro.ivfpq import IVFPQIndex


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_hosts=st.integers(1, 4),
    max_replicas=st.integers(1, 3),
    nprobe=st.sampled_from([2, 4, 8]),
    seed=st.integers(0, 1000),
)
def test_sharding_never_changes_results(n_hosts, max_replicas, nprobe, seed):
    """Property: for any host count, cross-host replica cap and nprobe,
    the merged multi-host result equals the single-index reference."""
    rng = np.random.default_rng(seed)
    dim, n_clusters, m, k = 16, 16, 4, 5
    vectors = rng.normal(size=(800, dim)).astype(np.float32)
    queries = rng.normal(size=(6, dim)).astype(np.float32)
    index = IVFPQIndex(dim, n_clusters, m)
    index.train(vectors, n_iter=3, rng=rng)
    index.add(vectors)

    def host_cfg():
        return SystemConfig(
            index=IndexConfig(dim=dim, n_clusters=n_clusters, m=m, train_iters=3),
            query=QueryConfig(nprobe=nprobe, k=k, batch_size=6),
            upanns=UpANNSConfig(),
            pim=PimSystemSpec(n_dimms=1, chips_per_dimm=1, dpus_per_chip=8),
        )

    engine = MultiHostEngine(
        host_configs=[host_cfg() for _ in range(n_hosts)],
        max_host_replicas=max_replicas,
    )
    engine.build(vectors, prebuilt_index=index, rng=rng)
    res = engine.search_batch(queries)
    ref = index.search(queries, k, nprobe)
    np.testing.assert_allclose(
        np.where(np.isfinite(res.distances), res.distances, -1.0),
        np.where(np.isfinite(ref.distances), ref.distances, -1.0),
        rtol=1e-4,
        atol=1e-3,
    )
    # Every cluster must be owned by at least one and at most the
    # capped number of hosts.
    for reps in engine.host_placement.replicas:
        assert 1 <= len(reps) <= max_replicas
