"""IVFFlat-on-PIM tests: the transferability claim, executable."""

import numpy as np
import pytest

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.flat_engine import IVFFlatPimEngine, make_flat_engine
from repro.errors import ConfigError, NotTrainedError
from repro.hardware.specs import PimSystemSpec
from repro.ivfpq import FlatIndex, recall_at_k
from repro.ivfpq.ivfflat import IVFFlatIndex


@pytest.fixture(scope="module")
def flat_index(small_dataset):
    idx = IVFFlatIndex(dim=32, n_clusters=32)
    idx.train(small_dataset.vectors, n_iter=6, rng=np.random.default_rng(3))
    idx.add(small_dataset.vectors)
    return idx


def flat_config(naive=False, kernel_mode="grouped"):
    return SystemConfig(
        index=IndexConfig(dim=32, n_clusters=32, m=4, train_iters=4),
        query=QueryConfig(nprobe=8, k=5, batch_size=40),
        upanns=UpANNSConfig(
            enable_cae=False,
            enable_placement=not naive,
            enable_topk_pruning=not naive,
            kernel_mode=kernel_mode,
        ),
        pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
        timing_scale=200.0,
    )


@pytest.fixture(scope="module")
def flat_engine(small_dataset, flat_index, history_queries):
    eng = IVFFlatPimEngine(flat_config())
    eng.build(
        small_dataset.vectors,
        history_queries=history_queries,
        prebuilt_index=flat_index,
    )
    return eng


class TestIVFFlatIndex:
    def test_search_is_exact_within_probes(self, flat_index, small_dataset, small_queries):
        """With all clusters probed, IVFFlat IS brute force."""
        flat = FlatIndex(32)
        flat.add(small_dataset.vectors)
        d_ref, i_ref = flat.search(small_queries, 10)
        d, i = flat_index.search(small_queries, 10, flat_index.n_clusters)
        np.testing.assert_array_equal(i, i_ref)
        np.testing.assert_allclose(d, d_ref, rtol=1e-3, atol=1e-2)

    def test_high_recall_at_moderate_nprobe(self, flat_index, small_dataset, small_queries):
        """No PQ distortion: recall is limited only by cluster filtering."""
        flat = FlatIndex(32)
        flat.add(small_dataset.vectors)
        _, gt = flat.search(small_queries, 10)
        _, ids = flat_index.search(small_queries, 10, 8)
        assert recall_at_k(ids, gt, 10) > 0.85

    def test_memory_is_uncompressed(self, flat_index, small_dataset):
        """The motivation for PQ: raw storage is dim x 4 bytes/vector."""
        expected = small_dataset.n * (32 * 4 + 8)
        assert flat_index.memory_bytes() == expected

    def test_lifecycle_errors(self):
        idx = IVFFlatIndex(8, 4)
        with pytest.raises(NotTrainedError):
            idx.add(np.zeros((3, 8), np.float32))
        with pytest.raises(NotTrainedError):
            idx.search(np.zeros((1, 8), np.float32), 1, 1)


class TestEngine:
    def test_results_match_reference(self, flat_engine, flat_index, small_queries):
        res = flat_engine.search_batch(small_queries)
        d_ref, i_ref = flat_index.search(small_queries, 5, 8)
        np.testing.assert_allclose(
            np.where(np.isfinite(res.distances), res.distances, -1),
            np.where(np.isfinite(d_ref), d_ref, -1),
            rtol=1e-3,
            atol=1e-2,
        )

    def test_search_before_build(self):
        with pytest.raises(NotTrainedError):
            IVFFlatPimEngine(flat_config()).search_batch(np.zeros((1, 32), np.float32))

    def test_timing_populated(self, flat_engine, small_queries):
        res = flat_engine.search_batch(small_queries)
        assert res.timing.dpu_makespan_s > 0
        assert res.qps > 0
        assert res.stage_seconds.distance_calc > 0

    def test_lut_stage_absent(self, flat_engine, small_queries):
        """No PQ means no LUT construction stage at all."""
        res = flat_engine.search_batch(small_queries)
        assert res.stage_seconds.lut_construction == 0.0

    def test_placement_transfers(self, small_dataset, flat_index, history_queries, small_queries):
        """Opt1 transfers: the placed engine balances better than the
        naive one on the same flat workload."""
        smart = IVFFlatPimEngine(flat_config())
        smart.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=flat_index,
        )
        naive = IVFFlatPimEngine(flat_config(naive=True))
        naive.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=flat_index,
        )
        assert (
            smart.search_batch(small_queries).cycle_load_ratio
            < naive.search_batch(small_queries).cycle_load_ratio
        )

    def test_pruning_transfers(self, flat_engine, small_queries):
        """Opt4 transfers: the pruned merge skips candidates here too."""
        res = flat_engine.search_batch(small_queries)
        assert res.heap_stats.pruned > 0

    def test_heavier_traffic_than_pq(
        self, small_dataset, flat_index, trained_index, history_queries, small_queries
    ):
        """Raw vectors are dim*4 bytes vs m bytes of codes: the flat
        engine must read far more MRAM for the same probes — the
        paper's case for compression at billion scale."""
        from repro.core.engine import UpANNSEngine

        flat_eng = IVFFlatPimEngine(flat_config())
        flat_eng.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=flat_index,
        )
        pq_cfg = SystemConfig(
            index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=4),
            query=QueryConfig(nprobe=8, k=5, batch_size=40),
            upanns=UpANNSConfig(),
            pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
            timing_scale=200.0,
        )
        pq_eng = UpANNSEngine(pq_cfg)
        pq_eng.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=trained_index,
        )
        flat_eng.search_batch(small_queries)
        pq_eng.search_batch(small_queries)
        flat_bytes = sum(d.counters.mram_read_bytes for d in flat_eng.pim.dpus)
        pq_bytes = sum(d.counters.mram_read_bytes for d in pq_eng.pim.dpus)
        assert flat_bytes > 3 * pq_bytes

    def test_factory_validates_dim(self):
        with pytest.raises(ConfigError):
            make_flat_engine(30, n_clusters=8, nprobe=2)


TIMING_FIELDS = (
    "host_filter_s",
    "host_schedule_s",
    "transfer_in_s",
    "dpu_makespan_s",
    "transfer_out_s",
    "host_aggregate_s",
)


def timing_hex(timing):
    return tuple(getattr(timing, f).hex() for f in TIMING_FIELDS)


class TestGroupedScan:
    """The grouped flat scan must match the looped reference bit-for-bit."""

    @pytest.fixture(scope="class")
    def engine_pair(self, small_dataset, flat_index, history_queries):
        engines = {}
        for mode in ("looped", "grouped"):
            eng = IVFFlatPimEngine(flat_config(kernel_mode=mode))
            eng.build(
                small_dataset.vectors,
                history_queries=history_queries,
                prebuilt_index=flat_index,
            )
            engines[mode] = eng
        return engines

    def test_grouped_matches_looped_bitwise(self, engine_pair, small_queries):
        looped = engine_pair["looped"].search_batch(small_queries)
        grouped = engine_pair["grouped"].search_batch(small_queries)
        np.testing.assert_array_equal(looped.ids, grouped.ids)
        np.testing.assert_array_equal(looped.distances, grouped.distances)
        assert timing_hex(looped.timing) == timing_hex(grouped.timing)

    def test_warm_repeat_batch_identical(self, engine_pair, small_queries):
        grouped = engine_pair["grouped"]
        first = grouped.search_batch(small_queries)
        second = grouped.search_batch(small_queries)
        np.testing.assert_array_equal(first.ids, second.ids)
        assert timing_hex(first.timing) == timing_hex(second.timing)

    def test_transfer_out_charged_for_actual_candidates(
        self, small_dataset, flat_index, history_queries, small_queries
    ):
        """Same contract as the PQ engine: result bytes follow the
        candidates actually returned, not the requested k.  With
        nprobe=1 each (query, DPU) worklist is one cluster, so any k
        beyond the largest cluster cannot change the bytes moved."""
        cfg = flat_config()
        cfg = SystemConfig(
            index=cfg.index,
            query=QueryConfig(nprobe=1, k=5, batch_size=40),
            upanns=cfg.upanns,
            pim=cfg.pim,
            timing_scale=cfg.timing_scale,
        )
        eng = IVFFlatPimEngine(cfg)
        eng.build(
            small_dataset.vectors,
            history_queries=history_queries,
            prebuilt_index=flat_index,
        )
        k_small = int(eng.index.cluster_sizes().max()) + 10
        res_a = eng.search_batch(small_queries, k=k_small)
        res_b = eng.search_batch(small_queries, k=2 * k_small)
        assert res_a.timing.transfer_out_s == res_b.timing.transfer_out_s
        assert res_a.timing.transfer_out_s > 0.0
