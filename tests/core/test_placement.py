"""Algorithm 1 (data placement) tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, PlacementError
from repro.core.placement import place_clusters, random_placement
from repro.data.skew import zipf_weights


def make_inputs(m=40, n_dpus=16, seed=0, sigma=1.0):
    rng = np.random.default_rng(seed)
    sizes = np.maximum(1, rng.lognormal(4, sigma, size=m).astype(np.int64))
    freqs = zipf_weights(m, 1.0)
    rng.shuffle(freqs)
    return sizes, freqs, n_dpus


class TestInvariants:
    def test_every_cluster_placed(self):
        sizes, freqs, n = make_inputs()
        pl = place_clusters(sizes, freqs, n, max_dpu_vectors=10**6)
        assert all(len(r) >= 1 for r in pl.replicas)

    def test_no_duplicate_dpu_per_cluster(self):
        sizes, freqs, n = make_inputs()
        pl = place_clusters(sizes, freqs, n, max_dpu_vectors=10**6)
        for r in pl.replicas:
            assert len(set(r)) == len(r)

    def test_validate_passes(self):
        sizes, freqs, n = make_inputs()
        pl = place_clusters(sizes, freqs, n, max_dpu_vectors=10**6)
        pl.validate(sizes, 10**6)

    def test_capacity_respected(self):
        sizes, freqs, n = make_inputs()
        cap = int(sizes.sum())  # loose but finite
        pl = place_clusters(sizes, freqs, n, max_dpu_vectors=cap)
        stored = np.zeros(n, dtype=np.int64)
        for c, dpus in enumerate(pl.replicas):
            for d in dpus:
                stored[d] += sizes[c]
        assert (stored <= cap).all()

    def test_oversized_cluster_rejected(self):
        sizes = np.array([100, 5000])
        freqs = np.array([0.5, 0.5])
        with pytest.raises(PlacementError):
            place_clusters(sizes, freqs, 4, max_dpu_vectors=1000)

    def test_capacity_infeasible_raises(self):
        sizes = np.full(20, 100, dtype=np.int64)
        freqs = np.full(20, 0.05)
        with pytest.raises(PlacementError):
            place_clusters(sizes, freqs, 2, max_dpu_vectors=150)

    def test_misaligned_inputs(self):
        with pytest.raises(ConfigError):
            place_clusters(np.ones(3), np.ones(4), 2, max_dpu_vectors=10)

    def test_needs_a_dpu(self):
        with pytest.raises(ConfigError):
            place_clusters(np.ones(3), np.ones(3), 0, max_dpu_vectors=10)


class TestReplication:
    def test_hot_clusters_replicated(self):
        sizes = np.full(10, 1000, dtype=np.int64)
        freqs = np.array([0.91] + [0.01] * 9)
        pl = place_clusters(sizes, freqs, 8, max_dpu_vectors=10**6)
        assert len(pl.replicas[0]) > max(len(r) for r in pl.replicas[1:])

    def test_uniform_frequencies_little_replication(self):
        sizes = np.full(64, 100, dtype=np.int64)
        freqs = np.full(64, 1 / 64)
        pl = place_clusters(
            sizes, freqs, 8, max_dpu_vectors=10**6, replication_headroom=1.0
        )
        # Each cluster carries 1/64 of total workload over 8 DPUs -> 1/8
        # of a DPU each -> single replicas.
        assert all(len(r) == 1 for r in pl.replicas)

    def test_headroom_scales_replicas(self):
        sizes, freqs, n = make_inputs()
        lo = place_clusters(
            sizes, freqs, n, max_dpu_vectors=10**6, replication_headroom=1.0
        )
        hi = place_clusters(
            sizes, freqs, n, max_dpu_vectors=10**6, replication_headroom=3.0
        )
        assert sum(len(r) for r in hi.replicas) > sum(len(r) for r in lo.replicas)

    def test_replicas_capped_at_ndpus(self):
        sizes = np.array([1000, 1])
        freqs = np.array([0.999, 0.001])
        pl = place_clusters(
            sizes, freqs, 4, max_dpu_vectors=10**6, replication_headroom=3.0
        )
        assert len(pl.replicas[0]) <= 4


class TestBalance:
    def test_estimated_load_ratio_near_one(self):
        sizes, freqs, n = make_inputs(m=200, n_dpus=16)
        pl = place_clusters(sizes, freqs, n, max_dpu_vectors=10**7)
        assert pl.load_ratio() < 1.6

    def test_beats_random_on_skew(self):
        sizes, freqs, n = make_inputs(m=200, n_dpus=16, sigma=1.5)
        smart = place_clusters(sizes, freqs, n, max_dpu_vectors=10**7)
        rand = random_placement(sizes, n, max_dpu_vectors=10**7)
        # Compare estimated workload ratios under the true frequencies.
        def realized_ratio(pl):
            w = np.zeros(n)
            for c, dpus in enumerate(pl.replicas):
                for d in dpus:
                    w[d] += sizes[c] * freqs[c] / len(dpus)
            return w.max() / w.mean()

        assert realized_ratio(smart) < realized_ratio(rand)


class TestRandomPlacement:
    def test_single_replica_each(self):
        sizes, _, n = make_inputs()
        pl = random_placement(sizes, n, max_dpu_vectors=10**6)
        assert all(len(r) == 1 for r in pl.replicas)

    def test_capacity_respected(self):
        sizes = np.full(10, 100, dtype=np.int64)
        pl = random_placement(sizes, 5, max_dpu_vectors=200)
        assert (pl.dpu_vectors <= 200).all()

    def test_infeasible_raises(self):
        sizes = np.full(10, 100, dtype=np.int64)
        with pytest.raises(PlacementError):
            random_placement(sizes, 2, max_dpu_vectors=150)

    def test_deterministic_with_seed(self):
        sizes, _, n = make_inputs()
        a = random_placement(sizes, n, max_dpu_vectors=10**6, rng=np.random.default_rng(5))
        b = random_placement(sizes, n, max_dpu_vectors=10**6, rng=np.random.default_rng(5))
        assert a.replicas == b.replicas


@settings(max_examples=30, deadline=None)
@given(
    m=st.integers(2, 60),
    n=st.integers(1, 24),
    seed=st.integers(0, 999),
    headroom=st.floats(1.0, 4.0),
)
def test_placement_properties(m, n, seed, headroom):
    """Property: for any skew, placement covers all clusters, never
    duplicates a DPU within a cluster, and respects capacity."""
    rng = np.random.default_rng(seed)
    sizes = np.maximum(1, rng.lognormal(3, 1.2, size=m).astype(np.int64))
    freqs = rng.random(m) + 1e-6
    freqs /= freqs.sum()
    cap = int(sizes.sum()) + 1
    pl = place_clusters(
        sizes, freqs, n, max_dpu_vectors=cap, replication_headroom=headroom
    )
    pl.validate(sizes, cap)
    assert len(pl.replicas) == m
