"""Access-trace and batch-generator tests."""

import numpy as np
import pytest

from repro.data.skew import skew_ratio
from repro.errors import ConfigError
from repro.workload.batch import BatchGenerator
from repro.workload.trace import AccessTrace, synthetic_trace


class TestAccessTrace:
    def test_record_and_frequencies(self):
        t = AccessTrace(8)
        t.record_batch(np.array([[0, 1], [0, 2]]))
        f = t.frequencies(smoothing=0.0)
        assert f[0] == pytest.approx(0.5)
        assert f.sum() == pytest.approx(1.0)

    def test_smoothing_keeps_unseen_positive(self):
        t = AccessTrace(8)
        t.record_batch(np.array([[0]]))
        assert t.frequencies()[7] > 0

    def test_out_of_range_rejected(self):
        t = AccessTrace(4)
        with pytest.raises(ConfigError):
            t.record_batch(np.array([[5]]))

    def test_decay_weights_recent(self):
        t = AccessTrace(2, decay=0.5)
        t.record_batch(np.array([[0]] * 8))
        t.record_batch(np.array([[1]] * 8))
        f = t.frequencies(smoothing=0.0)
        assert f[1] > f[0]

    def test_invalid_decay(self):
        with pytest.raises(ConfigError):
            AccessTrace(2, decay=0.0)

    def test_drift_zero_for_identical(self):
        a = AccessTrace(4)
        a.record_batch(np.array([[0, 1]]))
        assert a.drift_from(a.snapshot()) == pytest.approx(0.0)

    def test_drift_detects_shift(self):
        a = AccessTrace(4)
        a.record_batch(np.array([[0]] * 100))
        b = AccessTrace(4)
        b.record_batch(np.array([[3]] * 100))
        assert a.drift_from(b) > 0.5

    def test_drift_dimension_mismatch(self):
        with pytest.raises(ConfigError):
            AccessTrace(4).drift_from(AccessTrace(5))

    def test_snapshot_is_independent(self):
        a = AccessTrace(4)
        snap = a.snapshot()
        a.record_batch(np.array([[0]]))
        assert snap.total_observations == 0

    def test_synthetic_trace_skewed(self):
        t = synthetic_trace(64, alpha=1.0)
        assert skew_ratio(t.frequencies()) > 5


class TestBatchGenerator:
    def test_batch_shapes(self, small_dataset):
        gen = BatchGenerator(small_dataset, batch_size=25)
        b = gen.next_batch()
        assert b.queries.shape == (25, small_dataset.dim)
        assert b.size == 25
        assert b.batch_index == 0

    def test_indices_increment(self, small_dataset):
        gen = BatchGenerator(small_dataset, batch_size=5)
        batches = list(gen.batches(3))
        assert [b.batch_index for b in batches] == [0, 1, 2]

    def test_no_drift_stable_popularity(self, small_dataset):
        gen = BatchGenerator(small_dataset, batch_size=5, drift_per_batch=0.0)
        p0 = gen.popularity
        gen.next_batch()
        gen.next_batch()
        np.testing.assert_allclose(gen.popularity, p0)

    def test_drift_changes_popularity(self, small_dataset):
        gen = BatchGenerator(small_dataset, batch_size=5, drift_per_batch=0.5)
        p0 = gen.popularity
        gen.next_batch()
        gen.next_batch()  # drift applied between batches
        assert np.abs(gen.popularity - p0).sum() > 0.05

    def test_popularity_stays_normalized_under_drift(self, small_dataset):
        gen = BatchGenerator(small_dataset, batch_size=5, drift_per_batch=0.3)
        for _ in range(5):
            gen.next_batch()
        assert gen.popularity.sum() == pytest.approx(1.0)

    def test_invalid_params(self, small_dataset):
        with pytest.raises(ConfigError):
            BatchGenerator(small_dataset, batch_size=0)
        with pytest.raises(ConfigError):
            BatchGenerator(small_dataset, drift_per_batch=1.5)
