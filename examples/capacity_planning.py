"""Capacity planning: how many UPMEM DIMMs does a deployment need?

Uses the paper's Figure-20 methodology as a planning tool: measure QPS
at several simulated DPU counts, fit the (near-linear) scaling curve,
then answer two operator questions:

  * how many DPUs reach a QPS target?
  * what QPS fits inside a power budget (e.g. one A100's 300 W)?

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import make_engine
from repro.analysis.regression import fit_scaling
from repro.data import make_dataset, make_queries, zipf_weights
from repro.data.synthetic import SIFT1B
from repro.hardware.power import dpus_for_power_budget
from repro.hardware.specs import UPMEM_7_DIMMS

QPS_TARGET = 4000.0
POWER_BUDGET_W = 300.0  # one A100's peak power
DPU_SWEEP = (32, 48, 64, 80, 96)


def main() -> None:
    rng = np.random.default_rng(1)
    corpus = make_dataset(SIFT1B, 30_000, n_components=64, correlated_subspaces=4, rng=rng)
    popularity = zipf_weights(64, 0.6)
    history = make_queries(corpus, 2000, popularity=popularity, rng=rng)
    queries = make_queries(corpus, 300, popularity=popularity, rng=rng)

    print(f"{'DPUs':>6}  {'QPS':>10}")
    measured = []
    for n_dpus in DPU_SWEEP:
        engine = make_engine(
            dim=SIFT1B.dim,
            n_clusters=128,
            m=SIFT1B.pq_m,
            nprobe=8,
            k=10,
            pim_spec=UPMEM_7_DIMMS.with_n_dpus(n_dpus),
            timing_scale=1000.0,
        )
        engine.build(corpus.vectors, history_queries=history)
        qps = engine.search_batch(queries).qps
        measured.append(qps)
        print(f"{n_dpus:6d}  {qps:10,.0f}")

    fit = fit_scaling(np.array(DPU_SWEEP, dtype=float), np.array(measured))
    print(f"\nscaling fit: qps = {fit.slope:.2f} * dpus + {fit.intercept:.1f} "
          f"(R^2 = {fit.r_squared:.3f})")

    needed = fit.crossover(QPS_TARGET)
    dimm_size = 128
    dimms = int(np.ceil(needed / dimm_size))
    print(f"\nto reach {QPS_TARGET:,.0f} QPS: ~{needed:.0f} DPUs "
          f"=> {dimms} DIMM(s) ({dimms * dimm_size} DPUs)")

    budget_dpus = dpus_for_power_budget(UPMEM_7_DIMMS, POWER_BUDGET_W)
    print(f"under a {POWER_BUDGET_W:.0f} W budget: {budget_dpus} DPUs "
          f"=> predicted {fit.predict(budget_dpus):,.0f} QPS")


if __name__ == "__main__":
    main()
