"""Scale-out: sharding UpANNS across multiple PIM hosts (paper §5.5).

The paper notes that "only query distribution and result aggregation
require cross-host communication; the core memory-intensive search
operations remain local to each host".  This example shards one index
across 1, 2 and 4 hosts (each a 7-DIMM UPMEM box), verifies results are
identical to the single-host engine, and shows where the time goes.

Run:  python examples/multihost_scaleout.py
"""

import numpy as np

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.multihost import MultiHostEngine
from repro.data import make_dataset, make_queries, zipf_weights
from repro.data.synthetic import SIFT1B
from repro.hardware.specs import UPMEM_7_DIMMS
from repro.ivfpq import IVFPQIndex


def host_config() -> SystemConfig:
    return SystemConfig(
        index=IndexConfig(dim=SIFT1B.dim, n_clusters=128, m=SIFT1B.pq_m, train_iters=5),
        query=QueryConfig(nprobe=8, k=10, batch_size=300),
        upanns=UpANNSConfig(),
        pim=UPMEM_7_DIMMS,
        timing_scale=2000.0,
    )


def main() -> None:
    rng = np.random.default_rng(0)
    print("Corpus: 30k SIFT-like vectors (timing modeled at 60M scale)\n")
    corpus = make_dataset(SIFT1B, 30_000, n_components=64, correlated_subspaces=4, rng=rng)
    popularity = zipf_weights(64, 0.6)
    history = make_queries(corpus, 2000, popularity=popularity, rng=rng)
    queries = make_queries(corpus, 300, popularity=popularity, rng=rng)

    print("Training the shared index once...")
    cfg = host_config()
    index = IVFPQIndex(cfg.index.dim, cfg.index.n_clusters, cfg.index.m)
    index.train(corpus.vectors, n_iter=5, rng=rng)
    index.add(corpus.vectors)

    reference_ids = None
    print(f"\n{'hosts':>5}  {'QPS':>10}  {'search%':>8}  {'network%':>9}  {'clusters/host':>13}")
    for n_hosts in (1, 2, 4):
        engine = MultiHostEngine(host_configs=[host_config() for _ in range(n_hosts)])
        engine.build(corpus.vectors, history_queries=history, prebuilt_index=index)
        result = engine.search_batch(queries)
        if reference_ids is None:
            reference_ids = result.distances
        else:
            assert np.allclose(
                np.where(np.isfinite(result.distances), result.distances, -1),
                np.where(np.isfinite(reference_ids), reference_ids, -1),
                atol=1e-4,
            ), "sharding changed results!"
        network = result.distribute_s + result.gather_s
        capacity_gb = n_hosts * UPMEM_7_DIMMS.total_mram_bytes / 1e9
        print(
            f"{n_hosts:5d}  {result.qps:10,.0f}  "
            f"{result.host_makespan_s / result.total_s * 100:7.1f}%  "
            f"{network / result.total_s * 100:8.1f}%  "
            f"{str(engine.cluster_ownership()):>13}  ({capacity_gb:.0f} GB MRAM)"
        )

    print(
        "\nResults are identical across host counts, network overhead stays"
        "\nbelow 1 %, and aggregate MRAM capacity scales with hosts: at this"
        "\nbatch size one host's 896 DPUs are already underutilized, so"
        "\nscale-out buys *capacity* (bigger corpora) rather than QPS —"
        "\nexactly the regime the paper's section 5.5 targets."
    )


if __name__ == "__main__":
    main()
