"""Transferability: the UpANNS techniques applied to IVFFlat.

The paper's conclusion claims the core techniques (workload
distribution, resource management, top-k pruning) transfer beyond
IVFPQ.  This example runs the same skewed workload through both the
IVFPQ engine and an IVFFlat engine built from the same components and
shows the trade the two algorithms make:

  * IVFFlat: exact distances (higher recall), but raw vectors cost
    dim*4 bytes of MRAM traffic per candidate — memory pressure is why
    billion-scale systems compress;
  * IVFPQ: ~1/8th the traffic and storage, slight recall loss.

Run:  python examples/ivfflat_transfer.py
"""

import numpy as np

from repro import make_engine, make_flat_engine
from repro.data import make_dataset, make_queries, zipf_weights
from repro.hardware.specs import UPMEM_7_DIMMS
from repro.data.synthetic import SIFT1B
from repro.ivfpq import FlatIndex, recall_at_k

N = 25_000
TIMING_SCALE = 500.0


def main() -> None:
    rng = np.random.default_rng(2)
    corpus = make_dataset(SIFT1B, N, n_components=64, correlated_subspaces=4, rng=rng)
    popularity = zipf_weights(64, 0.6)
    history = make_queries(corpus, 2000, popularity=popularity, rng=rng)
    queries = make_queries(corpus, 200, popularity=popularity, rng=rng)

    exact = FlatIndex(SIFT1B.dim)
    exact.add(corpus.vectors)
    _, gt = exact.search(queries, 10)

    print("Building both engines on the same corpus and traffic history...")
    pq = make_engine(
        dim=SIFT1B.dim, n_clusters=128, m=SIFT1B.pq_m, nprobe=8, k=10, pim_spec=UPMEM_7_DIMMS.with_n_dpus(128),
        timing_scale=TIMING_SCALE,
    )
    pq.build(corpus.vectors, history_queries=history)
    flat = make_flat_engine(
        dim=SIFT1B.dim, n_clusters=128, nprobe=8, k=10, pim_spec=UPMEM_7_DIMMS.with_n_dpus(128), timing_scale=TIMING_SCALE,
    )
    flat.build(corpus.vectors, history_queries=history)

    r_pq = pq.search_batch(queries)
    r_flat = flat.search_batch(queries)

    pq_bytes = sum(d.counters.mram_read_bytes for d in pq.pim.dpus)
    flat_bytes = sum(d.counters.mram_read_bytes for d in flat.pim.dpus)
    pq_store = pq.index.code_bytes_total()
    flat_store = flat.index.memory_bytes()

    print(f"\n{'':22}  {'IVFPQ (UpANNS)':>15}  {'IVFFlat (UpANNS-style)':>22}")
    print(f"{'recall@10':22}  {recall_at_k(r_pq.ids, gt, 10):15.3f}  "
          f"{recall_at_k(r_flat.ids, gt, 10):22.3f}")
    print(f"{'modeled QPS':22}  {r_pq.qps:15,.0f}  {r_flat.qps:22,.0f}")
    print(f"{'balance max/avg':22}  {r_pq.cycle_load_ratio:15.2f}  "
          f"{r_flat.cycle_load_ratio:22.2f}")
    print(f"{'MRAM traffic (batch)':22}  {pq_bytes / 1e9:13.2f}GB  "
          f"{flat_bytes / 1e9:20.2f}GB")
    print(f"{'index storage':22}  {pq_store / 1e6:13.1f}MB  "
          f"{flat_store / 1e6:20.1f}MB")
    print(f"{'pruned merge inserts':22}  {r_pq.heap_stats.pruned:15,}  "
          f"{r_flat.heap_stats.pruned:22,}")

    print(
        "\nOpt1 (balance) and Opt4 (pruning) work unchanged on IVFFlat; the"
        f"\nprice of exactness is {flat_bytes / max(pq_bytes, 1):.1f}x the memory"
        f" traffic and {flat_store / max(pq_store, 1):.1f}x the storage —"
        "\nthe compression trade the paper's billion-scale focus is built on."
    )


if __name__ == "__main__":
    main()
