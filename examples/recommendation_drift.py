"""Recommendation serving with popularity drift and adaptive placement.

Models the paper's section 4.1.2 scenario: query patterns "change
regularly and incrementally".  A drifting batch stream erodes the
quality of the offline placement; the engine detects the drift from its
access trace and re-replicates (minor shifts) or re-places (major
shifts), restoring balance without touching functional results.

Run:  python examples/recommendation_drift.py
"""

import numpy as np

from repro import make_engine
from repro.core import AdaptivePolicy, OnlineService
from repro.data import make_dataset, make_queries, zipf_weights
from repro.hardware.specs import UPMEM_7_DIMMS
from repro.data.synthetic import DEEP1B
from repro.workload.batch import BatchGenerator


def main() -> None:
    rng = np.random.default_rng(3)
    print("Corpus: 30k DEEP-like item embeddings; users' tastes drift 20% per batch\n")
    items = make_dataset(
        DEEP1B, 30_000, n_components=64, correlated_subspaces=3, rng=rng
    )
    initial_popularity = zipf_weights(64, 0.8)
    history = make_queries(items, 3000, popularity=initial_popularity, rng=rng)

    engine = make_engine(
        dim=DEEP1B.dim,
        n_clusters=128,
        m=DEEP1B.pq_m,
        nprobe=8,
        k=10,
        pim_spec=UPMEM_7_DIMMS.with_n_dpus(128),
        timing_scale=1000.0,
    )
    engine.build(items.vectors, history_queries=history)

    stream = BatchGenerator(
        items, batch_size=300, zipf_alpha=0.8, drift_per_batch=0.2,
        rng=np.random.default_rng(11),
    )
    service = OnlineService(
        engine=engine,
        policy=AdaptivePolicy(replicate_threshold=0.03, relocate_threshold=0.30),
    )

    print(f"{'batch':>5}  {'drift':>6}  {'action':>12}  {'max/avg':>8}  {'QPS':>9}")
    for i, report in enumerate(service.serve(stream.batches(8))):
        print(
            f"{i:5d}  {report.drift:6.3f}  {report.action:>12}  "
            f"{report.result.cycle_load_ratio:8.2f}  {report.result.qps:9,.0f}"
        )

    print("\nAction history:", ", ".join(service.policy.history()))
    print("Placement refreshes:", service.refresh_count)
    summary = service.summary()
    print(
        f"Serving summary: p50 {summary['p50_ms']:.2f} ms/q, "
        f"p99 {summary['p99_ms']:.2f} ms/q, mean {summary['mean_qps']:,.0f} QPS"
    )
    print("Placement now uses", f"{engine.replication_factor():.2f}", "replicas/cluster")


if __name__ == "__main__":
    main()
