"""RAG-style passage retrieval: UpANNS vs CPU and GPU baselines.

Models the paper's motivating workload (retrieval-augmented LLM
serving, section 1): a large corpus of passage embeddings, a stream of
skewed queries (hot topics dominate), and a latency/efficiency
comparison across the three architectures — including the QPS/W numbers
the paper leads with.

Run:  python examples/rag_retrieval.py
"""

import numpy as np

from repro import CpuEngine, GpuEngine, make_engine
from repro.data import make_dataset, make_queries, zipf_weights
from repro.data.synthetic import SPACEV1B
from repro.hardware.specs import A100_PCIE_80GB, UPMEM_7_DIMMS, XEON_4110_PAIR
from repro.ivfpq import FlatIndex, recall_at_k

CORPUS = 40_000
TIMING_SCALE = 1500.0  # stand in for a 60M-passage deployment


def main() -> None:
    rng = np.random.default_rng(7)
    print(f"Corpus: {CORPUS} SPACEV-like passage embeddings "
          f"({SPACEV1B.dim}-d, timing modeled at {int(CORPUS * TIMING_SCALE / 1e6)}M scale)")
    corpus = make_dataset(
        SPACEV1B, CORPUS, n_components=96, correlated_subspaces=4, rng=rng
    )
    topic_popularity = zipf_weights(96, 0.8)  # hot topics dominate
    history = make_queries(corpus, 3000, popularity=topic_popularity, rng=rng)
    questions = make_queries(corpus, 500, popularity=topic_popularity, rng=rng)

    print("Building UpANNS (PIM) engine...")
    pim = make_engine(
        dim=SPACEV1B.dim,
        n_clusters=256,
        m=SPACEV1B.pq_m,
        nprobe=8,
        k=10,
        timing_scale=TIMING_SCALE,
    )
    pim.build(corpus.vectors, history_queries=history)

    cpu = CpuEngine(pim.index, workload_scale=TIMING_SCALE)
    gpu = GpuEngine(pim.index, workload_scale=TIMING_SCALE)

    print("Running the question batch on all three architectures...\n")
    r_pim = pim.search_batch(questions)
    r_cpu = cpu.search_batch(questions, 10, 8)
    r_gpu = gpu.search_batch(questions, 10, 8)

    flat = FlatIndex(SPACEV1B.dim)
    flat.add(corpus.vectors)
    _, gt = flat.search(questions, 10)

    rows = [
        ("Faiss-CPU (2x Xeon)", r_cpu.qps, XEON_4110_PAIR.peak_power_w, r_cpu.ids),
        ("Faiss-GPU (A100)", r_gpu.qps, A100_PCIE_80GB.peak_power_w, r_gpu.ids),
        ("UpANNS (7 DIMMs)", r_pim.qps, UPMEM_7_DIMMS.peak_power_w, r_pim.ids),
    ]
    print(f"{'engine':24}  {'QPS':>10}  {'QPS/W':>8}  {'recall@10':>9}")
    for name, qps, watts, ids in rows:
        print(
            f"{name:24}  {qps:10,.0f}  {qps / watts:8.2f}  "
            f"{recall_at_k(ids, gt, 10):9.3f}"
        )

    print(
        f"\nAll engines return identical results (max |dist diff| = "
        f"{np.nanmax(np.abs(np.where(np.isfinite(r_pim.distances), r_pim.distances, np.nan) - np.where(np.isfinite(r_cpu.distances), r_cpu.distances, np.nan))):.2e})"
    )
    print(
        f"UpANNS vs CPU: {r_pim.qps / r_cpu.qps:.1f}x QPS; "
        f"vs GPU: {(r_pim.qps / UPMEM_7_DIMMS.peak_power_w) / (r_gpu.qps / A100_PCIE_80GB.peak_power_w):.1f}x QPS/W"
    )


if __name__ == "__main__":
    main()
