"""The classic ANN evaluation: the recall-vs-QPS frontier.

Sweeps nprobe to trace the accuracy/throughput trade-off for UpANNS and
the CPU baseline, with exact ground truth from the FlatIndex — the
operating-point picture an operator uses to choose nprobe for a target
recall.  Also contrasts the exhaustive-PQ index (no IVF): same PQ
distortion, but it must scan everything, which is exactly the cost the
paper's cluster filtering avoids.

Run:  python examples/recall_qps_tradeoff.py
"""

import numpy as np

from repro import CpuEngine, make_engine
from repro.data import make_dataset, make_queries, zipf_weights
from repro.hardware.specs import UPMEM_7_DIMMS
from repro.data.synthetic import SIFT1B
from repro.ivfpq import FlatIndex, recall_at_k
from repro.ivfpq.pq_index import PQIndex

N = 30_000
TIMING_SCALE = 1000.0


def main() -> None:
    rng = np.random.default_rng(5)
    dataset = make_dataset(SIFT1B, N, n_components=64, correlated_subspaces=4, rng=rng)
    popularity = zipf_weights(64, 0.6)
    history = make_queries(dataset, 2000, popularity=popularity, rng=rng)
    queries = make_queries(dataset, 200, popularity=popularity, rng=rng)

    print("Computing exact ground truth...")
    flat = FlatIndex(SIFT1B.dim)
    flat.add(dataset.vectors)
    _, gt = flat.search(queries, 10)

    print("Building the shared IVFPQ index (|C|=128)...")
    engine = make_engine(
        dim=SIFT1B.dim, n_clusters=128, m=SIFT1B.pq_m,
        nprobe=1, k=10, pim_spec=UPMEM_7_DIMMS.with_n_dpus(128), timing_scale=TIMING_SCALE,
    )
    engine.build(dataset.vectors, history_queries=history)
    cpu = CpuEngine(engine.index, workload_scale=TIMING_SCALE)

    sweep = (1, 2, 4, 8, 16, 32)
    frontier = []
    for nprobe in sweep:
        probes = engine.index.ivf.search_clusters(queries, nprobe)
        res = engine.search_batch(queries, probes=[row for row in probes])
        r_cpu = cpu.search_batch(queries, 10, nprobe, compute_results=False)
        recall = recall_at_k(res.ids, gt, 10)
        frontier.append((nprobe, recall, res.qps, r_cpu.qps))

    # Normalize each engine to its own most-expensive setting so the
    # frontier (recall bought per throughput given up) is comparable.
    up_base = frontier[-1][2]
    cpu_base = frontier[-1][3]
    print(f"\n{'nprobe':>6}  {'recall@10':>9}  {'UpANNS rel-QPS':>14}  {'CPU rel-QPS':>11}")
    for nprobe, recall, up_qps, cpu_qps in frontier:
        print(
            f"{nprobe:6d}  {recall:9.3f}  {up_qps / up_base:14.2f}  "
            f"{cpu_qps / cpu_base:11.2f}"
        )

    # The exhaustive-PQ contrast: best-possible PQ recall, worst scan.
    print("\nExhaustive PQ (no IVF) for contrast:")
    pq = PQIndex(SIFT1B.dim, SIFT1B.pq_m)
    pq.train(dataset.vectors, n_iter=5, rng=rng)
    pq.add(dataset.vectors)
    _, pq_ids = pq.search(queries, 10)
    ceiling = recall_at_k(pq_ids, gt, 10)
    scanned_ratio = pq.scanned_points(1) / (
        engine.index.scanned_points(queries, 8).mean()
    )
    print(f"  recall ceiling (all points scanned): {ceiling:.3f}")
    print(f"  ...at {scanned_ratio:.0f}x the scan volume of IVFPQ @ nprobe=8")

    best = max(frontier, key=lambda f: f[1])
    print(
        f"\nAt nprobe={best[0]} the IVFPQ engines reach recall {best[1]:.3f} —"
        f"\nresidual encoding even beats the plain-PQ ceiling ({ceiling:.3f})"
        f"\nwhile scanning a small fraction of the corpus.  Past that point,"
        f"\nmore probes only cost throughput: pick the knee."
    )


if __name__ == "__main__":
    main()
