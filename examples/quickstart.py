"""Quickstart: build UpANNS on a synthetic corpus and run a batch.

Walks the full pipeline once:
  1. generate a SIFT-like corpus with skewed cluster structure,
  2. build the UpANNS engine (train IVFPQ, mine co-occurrences, place
     cluster replicas across the simulated 896-DPU UPMEM system),
  3. search a query batch and print recall, modeled QPS and the
     per-stage time breakdown.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import UpANNSConfig, make_engine
from repro.data import make_dataset, make_queries, zipf_weights
from repro.hardware.specs import UPMEM_7_DIMMS
from repro.data.synthetic import SIFT1B
from repro.ivfpq import FlatIndex, recall_at_k
from repro.metrics import format_breakdown


def main() -> None:
    rng = np.random.default_rng(42)

    print("1. Generating a 30k-vector SIFT-like corpus...")
    dataset = make_dataset(
        SIFT1B, 30_000, n_components=64, correlated_subspaces=4, rng=rng
    )
    popularity = zipf_weights(64, 0.6)
    history = make_queries(dataset, 2000, popularity=popularity, rng=rng)
    queries = make_queries(dataset, 200, popularity=popularity, rng=rng)

    print("2. Building the UpANNS engine (this trains IVFPQ)...")
    engine = make_engine(
        dim=SIFT1B.dim,
        n_clusters=128,
        m=SIFT1B.pq_m,
        nprobe=8,
        k=10,
        pim_spec=UPMEM_7_DIMMS.with_n_dpus(128),
        upanns=UpANNSConfig(),
        timing_scale=1000.0,  # charge costs as if lists were 1000x longer
    )
    engine.build(dataset.vectors, history_queries=history)
    print(
        f"   placed {engine.index.n_clusters} clusters as "
        f"{engine.replication_factor():.2f} replicas/cluster; "
        f"CAE shortened vectors by {engine.length_reduction_rate() * 100:.1f}%"
    )

    print("3. Searching a 200-query batch...")
    result = engine.search_batch(queries)

    flat = FlatIndex(SIFT1B.dim)
    flat.add(dataset.vectors)
    _, gt = flat.search(queries, 10)

    print(f"   recall@10      : {recall_at_k(result.ids, gt, 10):.3f}")
    print(f"   modeled QPS    : {result.qps:,.0f}")
    print(f"   DPU balance    : max/avg = {result.cycle_load_ratio:.2f}")
    print(f"   pruned inserts : {result.heap_stats.pruned:,}")
    print("   " + format_breakdown(result.stage_seconds, label="stage shares"))
    print("\nFirst query's neighbors:", result.ids[0].tolist())


if __name__ == "__main__":
    main()
